package core

import (
	"testing"

	"protean/internal/arm"
	"protean/internal/asm"
	"protean/internal/bus"
	"protean/internal/fabric"
)

// addImage returns a behavioural test image: out = a + b after `latency`
// cycles, with the iteration counter as its only state word.
func addImage(latency uint32) *Image {
	return NewBehaviouralImage(BehaviouralSpec{
		Name:       "testadd",
		Spec:       fabric.DefaultPFUSpec,
		StateWords: 1,
		Step: func(st []uint32, a, b uint32, init bool) (uint32, bool) {
			if init {
				st[0] = 1
			} else {
				st[0]++
			}
			return a + b, st[0] >= latency
		},
	})
}

// testMachine wires a CPU, RAM and RFU together and loads a program.
type testMachine struct {
	cpu *arm.CPU
	rfu *RFU
	bus *bus.Bus
}

func newTestMachine(t *testing.T, src string) (*testMachine, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b := bus.New()
	b.MustMap(0, bus.NewRAM(0x40000))
	cpu := arm.New(b)
	rfu := New(DefaultConfig)
	cpu.Cop[1] = rfu
	if err := b.LoadBytes(prog.Origin, prog.Code); err != nil {
		t.Fatal(err)
	}
	cpu.SetCPSR(uint32(arm.ModeUsr))
	cpu.R[arm.PC] = prog.Origin
	cpu.R[arm.SP] = 0x30000
	return &testMachine{cpu: cpu, rfu: rfu, bus: b}, prog
}

func (m *testMachine) runTo(t *testing.T, stop uint32) {
	t.Helper()
	if reason := m.cpu.Run(stop, 1_000_000); reason != arm.StopPC {
		t.Fatalf("did not reach stop: %v (%s)", reason, m.cpu)
	}
}

const addProg = `
	mov r0, #100
	mov r1, #23
	mcr p1, 0, r0, c0, c0      ; RFU r0 = 100
	mcr p1, 0, r1, c1, c0      ; RFU r1 = 23
	cdp p1, 5, c2, c0, c1      ; custom instruction CID 5: c2 = c0 + c1
	mrc p1, 0, r2, c2, c0      ; r2 = RFU r2
	b done
done:
	nop
`

func TestHardwareDispatch(t *testing.T) {
	m, prog := newTestMachine(t, addProg)
	img := addImage(4)
	if _, err := m.rfu.LoadImage(2, img); err != nil {
		t.Fatal(err)
	}
	m.rfu.PID = 77
	m.rfu.TLB1.Insert(IDTuple{PID: 77, CID: 5}, 2)
	m.runTo(t, prog.Symbols["done"])
	if m.cpu.R[2] != 123 {
		t.Fatalf("custom add = %d, want 123", m.cpu.R[2])
	}
	if m.rfu.Stats.HWDispatches != 1 || m.rfu.Stats.Completions != 1 {
		t.Errorf("stats = %+v", m.rfu.Stats)
	}
	if m.rfu.Counter(2) != 1 {
		t.Errorf("usage counter = %d", m.rfu.Counter(2))
	}
	// Status register back to 1, ready for the next invocation.
	if !m.rfu.PFU(2).Status {
		t.Error("status register not set after completion")
	}
}

func TestDispatchLatencyCharged(t *testing.T) {
	m, prog := newTestMachine(t, addProg)
	img := addImage(4)
	m.rfu.LoadImage(0, img)
	m.rfu.TLB1.Insert(IDTuple{PID: 0, CID: 5}, 0)
	m.runTo(t, prog.Symbols["done"])
	// CDP cost = 1 (issue) + DispatchCycles (1) + 4 PFU cycles = 6, on top
	// of 2 movs (2), 2 MCRs (4), 1 MRC (3), landing before the branch.
	wantMin := uint64(2 + 4 + 6 + 3)
	if m.cpu.Cycles < wantMin {
		t.Errorf("cycles = %d, want at least %d", m.cpu.Cycles, wantMin)
	}
	if m.rfu.Stats.ExecCycles != 4 {
		t.Errorf("exec cycles = %d, want 4", m.rfu.Stats.ExecCycles)
	}
}

func TestDispatchFault(t *testing.T) {
	m, _ := newTestMachine(t, addProg)
	var faulted []IDTuple
	m.rfu.FaultHook = func(k IDTuple) { faulted = append(faulted, k) }
	m.rfu.PID = 9
	// No mappings: the CDP must raise the undefined-instruction trap.
	for i := 0; i < 8; i++ {
		m.cpu.Step()
		if exc, ok := m.cpu.TookException(); ok {
			if exc != arm.ExcUndefined {
				t.Fatalf("exception = %v", exc)
			}
			if len(faulted) != 1 || faulted[0] != (IDTuple{PID: 9, CID: 5}) {
				t.Fatalf("fault hook saw %v", faulted)
			}
			if m.rfu.Stats.Faults != 1 {
				t.Fatalf("fault count = %d", m.rfu.Stats.Faults)
			}
			return
		}
	}
	t.Fatal("no exception taken")
}

func TestStaleMappingFaults(t *testing.T) {
	m, _ := newTestMachine(t, addProg)
	// Mapping points at an empty PFU: must fault and self-clean.
	m.rfu.TLB1.Insert(IDTuple{PID: 0, CID: 5}, 3)
	for i := 0; i < 8; i++ {
		m.cpu.Step()
		if exc, ok := m.cpu.TookException(); ok {
			if exc != arm.ExcUndefined {
				t.Fatalf("exception = %v", exc)
			}
			if _, ok := m.rfu.TLB1.Lookup(IDTuple{PID: 0, CID: 5}); ok {
				t.Fatal("stale mapping not removed")
			}
			return
		}
	}
	t.Fatal("no exception taken")
}

const softProg = `
	mov r0, #40
	mov r1, #2
	mcr p1, 0, r0, c0, c0
	mcr p1, 0, r1, c1, c0
	cdp p1, 5, c2, c0, c1      ; dispatches to software
	mrc p1, 0, r2, c2, c0      ; read retired result
	b done

swalt:                         ; software alternative: result = a - b
	mrc p1, 1, r4, c0, c0      ; r4 = captured operand A
	mrc p1, 1, r5, c1, c0      ; r5 = captured operand B
	sub r6, r4, r5
	mcr p1, 1, r6, c2, c0      ; store result (retires to dest RFU reg)
	mov pc, lr
done:
	nop
`

func TestSoftwareDispatch(t *testing.T) {
	m, prog := newTestMachine(t, softProg)
	m.rfu.PID = 4
	m.rfu.TLB2.Insert(IDTuple{PID: 4, CID: 5}, prog.Symbols["swalt"])
	m.runTo(t, prog.Symbols["done"])
	if m.cpu.R[2] != 38 {
		t.Fatalf("soft-dispatched result = %d, want 38", m.cpu.R[2])
	}
	if m.rfu.Stats.SWDispatches != 1 {
		t.Errorf("stats = %+v", m.rfu.Stats)
	}
	// Capture registers invalidated by the result store.
	if m.rfu.Capture().Valid {
		t.Error("capture still valid after result store")
	}
}

func TestHardwarePreferredOverSoftware(t *testing.T) {
	// With both mappings installed, TLB1 wins (§4.2: hardware is the
	// preferred resolution).
	m, prog := newTestMachine(t, softProg)
	m.rfu.LoadImage(1, addImage(2))
	m.rfu.TLB1.Insert(IDTuple{PID: 0, CID: 5}, 1)
	m.rfu.TLB2.Insert(IDTuple{PID: 0, CID: 5}, prog.Symbols["swalt"])
	m.runTo(t, prog.Symbols["done"])
	if m.cpu.R[2] != 42 {
		t.Fatalf("result = %d, want hardware's 42", m.cpu.R[2])
	}
}

const longProg = `
	mov r0, #7
	mov r1, #9
	mcr p1, 0, r0, c0, c0
	mcr p1, 0, r1, c1, c0
	cdp p1, 1, c2, c0, c1
	mrc p1, 0, r2, c2, c0
	b done
done:
	nop
`

func TestLongInstructionInterruptResume(t *testing.T) {
	// A 64-cycle instruction with an IRQ arriving mid-flight: the CPU
	// aborts the CDP, takes the IRQ, the handler returns, the CDP is
	// reissued, and the status register makes it resume rather than
	// restart (§4.4).
	m, prog := newTestMachine(t, longProg)
	img := addImage(64)
	m.rfu.LoadImage(0, img)
	m.rfu.TLB1.Insert(IDTuple{PID: 0, CID: 1}, 0)

	// The IRQ line asserts the moment the PFU has done 20 cycles of work —
	// that is mid-CDP, because the line is polled every coprocessor tick.
	armed := true
	m.cpu.IRQLine = func() bool { return armed && m.rfu.Stats.ExecCycles >= 20 }
	handler, err := asm.Assemble("subs pc, lr, #4", 0x18)
	if err != nil {
		t.Fatal(err)
	}
	m.bus.LoadBytes(0x18, handler.Code)

	fired := 0
	cyclesAtIRQ := uint64(0)
	for m.cpu.R[arm.PC] != prog.Symbols["done"] {
		before := m.cpu.R[arm.PC]
		m.cpu.Step()
		if exc, ok := m.cpu.TookException(); ok {
			if exc != arm.ExcIRQ {
				t.Fatalf("unexpected exception %v at pc=%#x", exc, before)
			}
			fired++
			armed = false
			cyclesAtIRQ = m.rfu.Stats.ExecCycles
		}
		if m.cpu.Cycles > 10000 {
			t.Fatal("runaway")
		}
	}
	if fired != 1 {
		t.Fatalf("IRQ fired %d times", fired)
	}
	if m.cpu.R[2] != 16 {
		t.Fatalf("result = %d, want 16", m.cpu.R[2])
	}
	if m.rfu.Stats.Aborts != 1 || m.rfu.Stats.Completions != 1 {
		t.Errorf("stats = %+v", m.rfu.Stats)
	}
	// Total PFU work = 64 cycles + the cycles lost to re-execution... the
	// status register means NO cycles are lost: exactly 64 total.
	if m.rfu.Stats.ExecCycles != 64 {
		t.Errorf("exec cycles = %d, want exactly 64 (no restart)", m.rfu.Stats.ExecCycles)
	}
	if cyclesAtIRQ >= 64 {
		t.Errorf("IRQ should have interrupted mid-instruction (at %d)", cyclesAtIRQ)
	}
	// One completion counted despite the interrupt (§4.5).
	if m.rfu.Counter(0) != 1 {
		t.Errorf("usage counter = %d, want 1", m.rfu.Counter(0))
	}
}

func TestSwapOutRestoreMidInstruction(t *testing.T) {
	// Swap a circuit off the array halfway through an instruction and
	// restore it: the split configuration (§4.1) carries the state frames
	// and the RFU status bit, so execution completes correctly.
	rfu := New(DefaultConfig)
	img := addImage(10)
	if _, err := rfu.LoadImage(0, img); err != nil {
		t.Fatal(err)
	}
	exec := &pfuExec{r: rfu, pfu: 0, a: 5, b: 6, dst: 3}
	for i := 0; i < 4; i++ {
		if exec.Tick() {
			t.Fatal("finished early")
		}
	}
	sc, stateBytes, err := rfu.SwapOut(0)
	if err != nil {
		t.Fatal(err)
	}
	if stateBytes != 4 {
		t.Errorf("state readback = %d bytes", stateBytes)
	}
	if sc.Status {
		t.Error("mid-instruction status must be 0")
	}
	// Something else uses PFU 0 meanwhile.
	rfu.LoadImage(0, addImage(2))
	other := &pfuExec{r: rfu, pfu: 0, a: 1, b: 1, dst: 0}
	for !other.Tick() {
	}
	// Restore into a different PFU and finish.
	if _, err := rfu.Restore(2, sc); err != nil {
		t.Fatal(err)
	}
	exec2 := &pfuExec{r: rfu, pfu: 2, a: 5, b: 6, dst: 3}
	ticks := 0
	for !exec2.Tick() {
		ticks++
		if ticks > 20 {
			t.Fatal("did not finish")
		}
	}
	if rfu.Regs[3] != 11 {
		t.Fatalf("result = %d, want 11", rfu.Regs[3])
	}
	// 4 ticks before swap + 6 after = 10 total: resume, not restart.
	if ticks+1 != 6 {
		t.Errorf("post-restore ticks = %d, want 6", ticks+1)
	}
}

func TestPrivilegedOpsRejectedInUserMode(t *testing.T) {
	rfu := New(DefaultConfig)
	if rfu.MCR(OpPID, 0, 0, 0, 5, true) {
		t.Error("user-mode PID write accepted")
	}
	if _, ok := rfu.MRC(OpCounter, 0, 0, 0, true); ok {
		t.Error("user-mode counter read accepted")
	}
	if !rfu.MCR(OpPID, 0, 0, 0, 5, false) {
		t.Error("privileged PID write rejected")
	}
	if rfu.PID != 5 {
		t.Error("PID not written")
	}
}

func TestCounterReadClear(t *testing.T) {
	rfu := New(DefaultConfig)
	rfu.LoadImage(1, addImage(1))
	exec := &pfuExec{r: rfu, pfu: 1, a: 1, b: 2, dst: 0}
	for i := 0; i < 3; i++ {
		for !exec.Tick() {
		}
	}
	v, ok := rfu.MRC(OpCounter, 1, 0, 0, false)
	if !ok || v != 3 {
		t.Fatalf("counter = %d,%v", v, ok)
	}
	if !rfu.MCR(OpCounter, 1, 0, 0, 0, false) {
		t.Fatal("clear rejected")
	}
	if rfu.Counter(1) != 0 {
		t.Fatal("counter not cleared")
	}
}

func TestCaptureSaveRestore(t *testing.T) {
	rfu := New(DefaultConfig)
	rfu.SetCapture(CaptureState{A: 1, B: 2, Res: 3, Dst: 4, Valid: true})
	// Kernel-side save via coprocessor ops.
	var saved [4]uint32
	for i := uint32(0); i < 4; i++ {
		v, ok := rfu.MRC(OpCaptureSave, i, 0, 0, false)
		if !ok {
			t.Fatalf("save reg %d rejected", i)
		}
		saved[i] = v
	}
	rfu.SetCapture(CaptureState{})
	for i := uint32(0); i < 4; i++ {
		if !rfu.MCR(OpCaptureSave, i, 0, 0, saved[i], false) {
			t.Fatalf("restore reg %d rejected", i)
		}
	}
	got := rfu.Capture()
	want := CaptureState{A: 1, B: 2, Res: 3, Dst: 4, Valid: true}
	if got != want {
		t.Fatalf("capture = %+v, want %+v", got, want)
	}
}

func TestNestedSoftDispatchClobbersCapture(t *testing.T) {
	// §4.3: a software alternative that itself soft-dispatches loses the
	// capture registers — documented bad practice we reproduce faithfully.
	rfu := New(DefaultConfig)
	rfu.TLB2.Insert(IDTuple{PID: 0, CID: 1}, 0x1000)
	rfu.TLB2.Insert(IDTuple{PID: 0, CID: 2}, 0x2000)
	rfu.Regs[0], rfu.Regs[1] = 11, 22
	out := rfu.CDP(1, 3, 0, 1, 0, true)
	if out.Action != arm.CDPBranchLink || out.Addr != 0x1000 {
		t.Fatalf("outcome = %+v", out)
	}
	first := rfu.Capture()
	// Nested dispatch overwrites.
	rfu.Regs[0], rfu.Regs[1] = 33, 44
	rfu.CDP(2, 5, 0, 1, 0, true)
	second := rfu.Capture()
	if second.A != 33 || second.Dst != 5 {
		t.Fatalf("nested capture = %+v", second)
	}
	if first.A == second.A {
		t.Fatal("test is vacuous")
	}
}

func TestFabricImageThroughRFU(t *testing.T) {
	// A real gate-level circuit (the 16-cycle multiplier) dispatched
	// through the RFU end to end.
	img, err := NewFabricImage("seqmul16", fabric.SeqMul16(), fabric.DefaultPFUSpec)
	if err != nil {
		t.Fatal(err)
	}
	if img.StaticBytes != fabric.StaticBytes(fabric.DefaultPFUSpec) {
		t.Errorf("static size = %d", img.StaticBytes)
	}
	rfu := New(DefaultConfig)
	if _, err := rfu.LoadImage(0, img); err != nil {
		t.Fatal(err)
	}
	rfu.Regs[0], rfu.Regs[1] = 123, 456
	exec := &pfuExec{r: rfu, pfu: 0, a: rfu.Regs[0], b: rfu.Regs[1], dst: 2}
	ticks := 0
	for !exec.Tick() {
		ticks++
		if ticks > 64 {
			t.Fatal("no completion")
		}
	}
	if rfu.Regs[2] != 123*456 {
		t.Fatalf("product = %d", rfu.Regs[2])
	}
	if ticks+1 != fabric.SeqMul16Cycles {
		t.Errorf("latency = %d", ticks+1)
	}
}

func TestBehaviouralStateRoundTrip(t *testing.T) {
	img := addImage(8)
	m, err := img.NewInstance()
	if err != nil {
		t.Fatal(err)
	}
	m.Step(1, 2, true)
	m.Step(1, 2, false)
	st := m.SaveState()
	m2, _ := img.NewInstance()
	if err := m2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	// Both models must now agree on remaining latency.
	for i := 0; i < 8; i++ {
		_, d1 := m.Step(1, 2, false)
		_, d2 := m2.Step(1, 2, false)
		if d1 != d2 {
			t.Fatalf("divergence at step %d", i)
		}
		if d1 {
			return
		}
	}
	t.Fatal("never completed")
}

func TestBehaviouralStateLengthCheck(t *testing.T) {
	img := addImage(2)
	m, _ := img.NewInstance()
	if err := m.LoadState([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestRFUResetClearsEverything(t *testing.T) {
	rfu := New(DefaultConfig)
	rfu.LoadImage(0, addImage(1))
	exec := &pfuExec{r: rfu, pfu: 0, a: 1, b: 1, dst: 0}
	for !exec.Tick() {
	}
	rfu.Reset()
	for i := 0; i < rfu.NumPFUs(); i++ {
		info := rfu.PFU(i)
		if info.Loaded || info.Counter != 0 || !info.Status {
			t.Fatalf("PFU %d after reset: %+v", i, info)
		}
	}
}

func TestRegisterFileMoves(t *testing.T) {
	m, prog := newTestMachine(t, `
	mov r0, #55
	mcr p1, 0, r0, c7, c0
	mrc p1, 0, r3, c7, c0
	b done
done:
	nop
`)
	m.runTo(t, prog.Symbols["done"])
	if m.cpu.R[3] != 55 {
		t.Fatalf("register file move = %d", m.cpu.R[3])
	}
	if m.rfu.Regs[7] != 55 {
		t.Fatalf("RFU reg = %d", m.rfu.Regs[7])
	}
}
