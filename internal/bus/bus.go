// Package bus models the ProteanARM on-chip memory system: a 32-bit
// little-endian bus with attachable regions (RAM and memory-mapped devices)
// and a simple wait-state model.
//
// The bus is deliberately minimal: the ProteanARM of the paper is an
// ARM7TDMI-class system-on-chip with single-cycle SRAM, so the default
// configuration has zero wait states and the cycle cost of memory access is
// carried by the CPU cycle model (internal/arm). Wait states can be enabled
// per region to model slower memories.
package bus

import (
	"fmt"
	"sort"
)

// Access describes the kind of bus access, used for device side effects and
// abort reporting.
type Access int

// Access kinds.
const (
	Load Access = iota
	Store
	Fetch
)

func (a Access) String() string {
	switch a {
	case Load:
		return "load"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Fault describes a failed bus access. A nil *Fault means success.
type Fault struct {
	Addr   uint32
	Access Access
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("bus fault: %s at %#08x: %s", f.Access, f.Addr, f.Reason)
}

// Region is a span of the physical address space serviced by a handler.
// Handlers receive region-relative offsets.
type Region interface {
	// Size reports the number of bytes the region decodes.
	Size() uint32
	// Read8 and Write8 service byte accesses at a region-relative offset.
	// Wider accesses are assembled by the bus unless the region also
	// implements Word32Region.
	Read8(off uint32) (byte, bool)
	Write8(off uint32, v byte) bool
}

// Word32Region is an optional fast path for regions that service aligned
// 32-bit accesses natively (RAM and most devices).
type Word32Region interface {
	Region
	Read32(off uint32) (uint32, bool)
	Write32(off uint32, v uint32) bool
}

// WaitStater is an optional interface for regions that insert wait states.
type WaitStater interface {
	// WaitStates reports extra cycles consumed per access.
	WaitStates() uint32
}

type mapping struct {
	base   uint32
	limit  uint32 // inclusive upper bound
	region Region
	// w32 and ws are the region's optional fast-path interfaces, resolved
	// once at Map time so the per-access path never type-asserts.
	w32 Word32Region
	ws  WaitStater
}

// Bus is the system interconnect. It is not safe for concurrent use; the
// simulator is single-threaded per machine.
type Bus struct {
	maps []mapping

	// hot caches the most recently hit mapping: almost every access in a
	// running machine lands in RAM, so the common case is two compares
	// instead of a binary search.
	hot mapping

	// WaitCycles accumulates wait-state cycles since the last TakeWaits
	// call. The CPU adds these to its cycle count.
	waitCycles uint64
}

// New returns an empty bus.
func New() *Bus { return &Bus{} }

// Map attaches region at base. Regions must not overlap.
func (b *Bus) Map(base uint32, r Region) error {
	size := r.Size()
	if size == 0 {
		return fmt.Errorf("bus: cannot map zero-sized region at %#08x", base)
	}
	limit := base + size - 1
	if limit < base {
		return fmt.Errorf("bus: region at %#08x size %#x wraps address space", base, size)
	}
	for _, m := range b.maps {
		if base <= m.limit && limit >= m.base {
			return fmt.Errorf("bus: region at %#08x..%#08x overlaps existing %#08x..%#08x",
				base, limit, m.base, m.limit)
		}
	}
	m := mapping{base: base, limit: limit, region: r}
	m.w32, _ = r.(Word32Region)
	m.ws, _ = r.(WaitStater)
	b.maps = append(b.maps, m)
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	return nil
}

// MustMap is Map but panics on error; for wiring code where overlap is a
// programming error.
func (b *Bus) MustMap(base uint32, r Region) {
	if err := b.Map(base, r); err != nil {
		panic(err)
	}
}

func (b *Bus) find(addr uint32) (*mapping, bool) {
	// Fast path: the last mapping hit (regions never overlap, so a stale
	// hot entry can only miss, never mis-route). Returned by pointer —
	// the mapping struct is seven words, too big to copy per access.
	h := &b.hot
	if h.region != nil && addr >= h.base && addr <= h.limit {
		return h, true
	}
	// Binary search over sorted, non-overlapping mappings.
	lo, hi := 0, len(b.maps)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		m := &b.maps[mid]
		switch {
		case addr < m.base:
			hi = mid - 1
		case addr > m.limit:
			lo = mid + 1
		default:
			b.hot = *m
			return h, true
		}
	}
	return nil, false
}

func (b *Bus) charge(m *mapping) {
	if m.ws != nil {
		b.waitCycles += uint64(m.ws.WaitStates())
	}
}

// TakeWaits returns and clears the accumulated wait-state cycle count.
func (b *Bus) TakeWaits() uint64 {
	w := b.waitCycles
	b.waitCycles = 0
	return w
}

// Read8 reads one byte.
func (b *Bus) Read8(addr uint32, kind Access) (byte, *Fault) {
	m, ok := b.find(addr)
	if !ok {
		return 0, &Fault{addr, kind, "unmapped"}
	}
	b.charge(m)
	v, ok := m.region.Read8(addr - m.base)
	if !ok {
		return 0, &Fault{addr, kind, "region rejected read"}
	}
	return v, nil
}

// Write8 writes one byte.
func (b *Bus) Write8(addr uint32, v byte) *Fault {
	m, ok := b.find(addr)
	if !ok {
		return &Fault{addr, Store, "unmapped"}
	}
	b.charge(m)
	if !m.region.Write8(addr-m.base, v) {
		return &Fault{addr, Store, "region rejected write"}
	}
	return nil
}

// Read16 reads a little-endian halfword. addr must be halfword aligned;
// the CPU is responsible for ARM alignment behaviour.
func (b *Bus) Read16(addr uint32, kind Access) (uint16, *Fault) {
	lo, f := b.Read8(addr, kind)
	if f != nil {
		return 0, f
	}
	hi, f := b.Read8(addr+1, kind)
	if f != nil {
		return 0, f
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// Write16 writes a little-endian halfword.
func (b *Bus) Write16(addr uint32, v uint16) *Fault {
	if f := b.Write8(addr, byte(v)); f != nil {
		return f
	}
	return b.Write8(addr+1, byte(v>>8))
}

// Read32 reads a little-endian word. addr must be word aligned.
func (b *Bus) Read32(addr uint32, kind Access) (uint32, *Fault) {
	if m, ok := b.find(addr); ok {
		if m.w32 != nil && addr+3 <= m.limit {
			b.charge(m)
			v, good := m.w32.Read32(addr - m.base)
			if !good {
				return 0, &Fault{addr, kind, "region rejected read"}
			}
			return v, nil
		}
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		bv, f := b.Read8(addr+i, kind)
		if f != nil {
			return 0, f
		}
		v |= uint32(bv) << (8 * i)
	}
	return v, nil
}

// Write32 writes a little-endian word.
func (b *Bus) Write32(addr uint32, v uint32) *Fault {
	if m, ok := b.find(addr); ok {
		if m.w32 != nil && addr+3 <= m.limit {
			b.charge(m)
			if !m.w32.Write32(addr-m.base, v) {
				return &Fault{addr, Store, "region rejected write"}
			}
			return nil
		}
	}
	for i := uint32(0); i < 4; i++ {
		if f := b.Write8(addr+i, byte(v>>(8*i))); f != nil {
			return f
		}
	}
	return nil
}

// LoadBytes copies data into memory starting at addr, for program loading.
func (b *Bus) LoadBytes(addr uint32, data []byte) error {
	for i, v := range data {
		if f := b.Write8(addr+uint32(i), v); f != nil {
			return f
		}
	}
	return nil
}

// ReadBytes copies n bytes out of memory starting at addr.
func (b *Bus) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, f := b.Read8(addr+uint32(i), Load)
		if f != nil {
			return nil, f
		}
		out[i] = v
	}
	return out, nil
}
