package bus

import "bytes"

// Device register offsets for the Timer region.
const (
	TimerRegLoad    = 0x0 // period in cycles (write), current period (read)
	TimerRegValue   = 0x4 // cycles until next expiry (read only)
	TimerRegCtrl    = 0x8 // bit0 = enable
	TimerRegIntAck  = 0xC // write any value to acknowledge the interrupt
	TimerRegPending = 0xC // read: 1 if interrupt pending
	timerSize       = 0x10
)

// Timer is a down-counting interval timer that raises a level-triggered
// interrupt each time the period elapses. It drives the pre-emptive
// scheduler of the POrSCHE kernel.
type Timer struct {
	period  uint32
	value   uint64
	enable  bool
	pending bool

	// Expiries counts total expirations, for statistics.
	Expiries uint64
}

// NewTimer returns a disabled timer.
func NewTimer() *Timer { return &Timer{} }

// Size implements Region.
func (t *Timer) Size() uint32 { return timerSize }

// Tick advances the timer by n cycles.
func (t *Timer) Tick(n uint64) {
	if !t.enable || t.period == 0 {
		return
	}
	for n > 0 {
		if t.value > n {
			t.value -= n
			return
		}
		n -= t.value
		t.value = uint64(t.period)
		t.pending = true
		t.Expiries++
	}
}

// IRQ reports whether the timer interrupt line is asserted.
func (t *Timer) IRQ() bool { return t.pending }

// Ack clears the pending interrupt.
func (t *Timer) Ack() { t.pending = false }

// SetPeriod programs the period and restarts the countdown.
func (t *Timer) SetPeriod(cycles uint32) {
	t.period = cycles
	t.value = uint64(cycles)
}

// Enable turns the timer on or off.
func (t *Timer) Enable(on bool) {
	t.enable = on
	if on && t.value == 0 {
		t.value = uint64(t.period)
	}
}

// Read8 implements Region via word registers.
func (t *Timer) Read8(off uint32) (byte, bool) {
	v, ok := t.Read32(off &^ 3)
	if !ok {
		return 0, false
	}
	return byte(v >> (8 * (off & 3))), true
}

// Write8 implements Region. Byte writes to device registers write the whole
// register with the byte value, which is sufficient for the kernel's use.
func (t *Timer) Write8(off uint32, v byte) bool {
	return t.Write32(off&^3, uint32(v))
}

// Read32 implements Word32Region.
func (t *Timer) Read32(off uint32) (uint32, bool) {
	switch off {
	case TimerRegLoad:
		return t.period, true
	case TimerRegValue:
		return uint32(t.value), true
	case TimerRegCtrl:
		if t.enable {
			return 1, true
		}
		return 0, true
	case TimerRegPending:
		if t.pending {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Write32 implements Word32Region.
func (t *Timer) Write32(off uint32, v uint32) bool {
	switch off {
	case TimerRegLoad:
		t.SetPeriod(v)
		return true
	case TimerRegCtrl:
		t.Enable(v&1 != 0)
		return true
	case TimerRegIntAck:
		t.Ack()
		return true
	}
	return false
}

// Console register offsets.
const (
	ConsoleRegPut  = 0x0 // write: emit low byte
	ConsoleRegStat = 0x4 // read: always 1 (ready)
	consoleSize    = 0x8
)

// Console is a write-only character device capturing program output.
type Console struct {
	buf bytes.Buffer
}

// NewConsole returns an empty console.
func NewConsole() *Console { return &Console{} }

// Size implements Region.
func (c *Console) Size() uint32 { return consoleSize }

// Read8 implements Region.
func (c *Console) Read8(off uint32) (byte, bool) {
	if off&^3 == ConsoleRegStat {
		return 1, true
	}
	return 0, false
}

// Write8 implements Region.
func (c *Console) Write8(off uint32, v byte) bool {
	if off&^3 == ConsoleRegPut {
		c.buf.WriteByte(v)
		return true
	}
	return false
}

// Read32 implements Word32Region.
func (c *Console) Read32(off uint32) (uint32, bool) {
	v, ok := c.Read8(off)
	return uint32(v), ok
}

// Write32 implements Word32Region.
func (c *Console) Write32(off uint32, v uint32) bool {
	return c.Write8(off, byte(v))
}

// String returns everything written so far.
func (c *Console) String() string { return c.buf.String() }

// Reset discards captured output.
func (c *Console) Reset() { c.buf.Reset() }
