package bus

// RAM is a flat byte-addressable memory region. The zero value is unusable;
// use NewRAM.
type RAM struct {
	data  []byte
	waits uint32
}

// NewRAM allocates a RAM region of size bytes with zero wait states.
func NewRAM(size uint32) *RAM {
	return &RAM{data: make([]byte, size)}
}

// NewRAMWaits allocates a RAM region that charges waits extra cycles per
// access, modelling slower off-chip memory.
func NewRAMWaits(size, waits uint32) *RAM {
	return &RAM{data: make([]byte, size), waits: waits}
}

// Size reports the region size in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.data)) }

// WaitStates reports the configured wait states per access.
func (r *RAM) WaitStates() uint32 { return r.waits }

// Read8 implements Region.
func (r *RAM) Read8(off uint32) (byte, bool) {
	if off >= uint32(len(r.data)) {
		return 0, false
	}
	return r.data[off], true
}

// Write8 implements Region.
func (r *RAM) Write8(off uint32, v byte) bool {
	if off >= uint32(len(r.data)) {
		return false
	}
	r.data[off] = v
	return true
}

// Read32 implements Word32Region.
func (r *RAM) Read32(off uint32) (uint32, bool) {
	if off+3 >= uint32(len(r.data)) || off+3 < off {
		return 0, false
	}
	d := r.data[off : off+4 : off+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, true
}

// Write32 implements Word32Region.
func (r *RAM) Write32(off uint32, v uint32) bool {
	if off+3 >= uint32(len(r.data)) || off+3 < off {
		return false
	}
	d := r.data[off : off+4 : off+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
	return true
}

// Bytes exposes the backing store for fast bulk loading in tests and
// loaders. Mutating it is equivalent to writing through the bus without
// wait-state charges.
func (r *RAM) Bytes() []byte { return r.data }
