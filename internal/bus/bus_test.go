package bus

import (
	"testing"
	"testing/quick"
)

func TestRAMReadWrite(t *testing.T) {
	b := New()
	b.MustMap(0x1000, NewRAM(0x100))
	if f := b.Write32(0x1000, 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	v, f := b.Read32(0x1000, Load)
	if f != nil || v != 0xDEADBEEF {
		t.Fatalf("read %#x, %v", v, f)
	}
	// Byte lanes are little-endian.
	b8, _ := b.Read8(0x1000, Load)
	if b8 != 0xEF {
		t.Errorf("byte 0 = %#x", b8)
	}
	b8, _ = b.Read8(0x1003, Load)
	if b8 != 0xDE {
		t.Errorf("byte 3 = %#x", b8)
	}
	// Halfword access.
	h, _ := b.Read16(0x1002, Load)
	if h != 0xDEAD {
		t.Errorf("half = %#x", h)
	}
	if f := b.Write16(0x1004, 0x1234); f != nil {
		t.Fatal(f)
	}
	h, _ = b.Read16(0x1004, Load)
	if h != 0x1234 {
		t.Errorf("half rt = %#x", h)
	}
}

func TestUnmappedFaults(t *testing.T) {
	b := New()
	b.MustMap(0x1000, NewRAM(0x100))
	if _, f := b.Read32(0x2000, Load); f == nil {
		t.Error("unmapped read did not fault")
	}
	if f := b.Write8(0xFFFFFFFF, 1); f == nil {
		t.Error("unmapped write did not fault")
	}
	if _, f := b.Read32(0x10FE, Fetch); f == nil {
		t.Error("read straddling the end of a region did not fault")
	}
	// Fault formatting mentions the access and address.
	_, f := b.Read8(0x2000, Fetch)
	if f == nil || f.Access != Fetch || f.Addr != 0x2000 {
		t.Errorf("fault = %+v", f)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestOverlapRejected(t *testing.T) {
	b := New()
	b.MustMap(0x1000, NewRAM(0x100))
	if err := b.Map(0x1080, NewRAM(0x100)); err == nil {
		t.Fatal("overlapping map accepted")
	}
	if err := b.Map(0x0F81, NewRAM(0x100)); err == nil {
		t.Fatal("overlapping map accepted")
	}
	if err := b.Map(0x1100, NewRAM(0x100)); err != nil {
		t.Fatalf("adjacent map rejected: %v", err)
	}
}

func TestZeroSizeAndWrapRejected(t *testing.T) {
	b := New()
	if err := b.Map(0, NewRAM(0)); err == nil {
		t.Error("zero-size region accepted")
	}
	if err := b.Map(0xFFFFFF00, NewRAM(0x200)); err == nil {
		t.Error("wrapping region accepted")
	}
}

func TestWaitStates(t *testing.T) {
	b := New()
	b.MustMap(0, NewRAMWaits(0x100, 2))
	b.Read32(0, Load)
	b.Write32(4, 9)
	if w := b.TakeWaits(); w != 4 {
		t.Errorf("wait cycles = %d, want 4", w)
	}
	if w := b.TakeWaits(); w != 0 {
		t.Errorf("waits not cleared: %d", w)
	}
}

func TestRoundTripProperty(t *testing.T) {
	b := New()
	b.MustMap(0, NewRAM(0x10000))
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3
		if fl := b.Write32(a, v); fl != nil {
			return false
		}
		got, fl := b.Read32(a, Load)
		return fl == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadReadBytes(t *testing.T) {
	b := New()
	b.MustMap(0x100, NewRAM(0x100))
	data := []byte{1, 2, 3, 4, 5}
	if err := b.LoadBytes(0x110, data); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(0x110, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
	if err := b.LoadBytes(0x1FE, data); err == nil {
		t.Error("overflowing load did not fail")
	}
}

func TestTimerExpiry(t *testing.T) {
	tm := NewTimer()
	tm.SetPeriod(100)
	tm.Enable(true)
	tm.Tick(99)
	if tm.IRQ() {
		t.Fatal("early IRQ")
	}
	tm.Tick(1)
	if !tm.IRQ() {
		t.Fatal("no IRQ at expiry")
	}
	tm.Ack()
	if tm.IRQ() {
		t.Fatal("ack did not clear")
	}
	// Multiple periods in one tick still assert once and count expiries.
	tm.Tick(250)
	if !tm.IRQ() || tm.Expiries != 3 {
		t.Fatalf("expiries = %d irq=%v", tm.Expiries, tm.IRQ())
	}
}

func TestTimerDisabled(t *testing.T) {
	tm := NewTimer()
	tm.SetPeriod(10)
	tm.Tick(100)
	if tm.IRQ() {
		t.Fatal("disabled timer fired")
	}
}

func TestTimerMMIO(t *testing.T) {
	b := New()
	tm := NewTimer()
	b.MustMap(0xF000, tm)
	b.Write32(0xF000+TimerRegLoad, 50)
	b.Write32(0xF000+TimerRegCtrl, 1)
	tm.Tick(60)
	v, _ := b.Read32(0xF000+TimerRegPending, Load)
	if v != 1 {
		t.Fatal("pending not visible via MMIO")
	}
	b.Write32(0xF000+TimerRegIntAck, 1)
	v, _ = b.Read32(0xF000+TimerRegPending, Load)
	if v != 0 {
		t.Fatal("ack via MMIO failed")
	}
	p, _ := b.Read32(0xF000+TimerRegLoad, Load)
	if p != 50 {
		t.Fatalf("period readback = %d", p)
	}
}

func TestConsoleCapture(t *testing.T) {
	b := New()
	c := NewConsole()
	b.MustMap(0xF100, c)
	for _, ch := range []byte("hi!") {
		b.Write32(0xF100+ConsoleRegPut, uint32(ch))
	}
	if c.String() != "hi!" {
		t.Fatalf("console = %q", c.String())
	}
	v, _ := b.Read32(0xF100+ConsoleRegStat, Load)
	if v != 1 {
		t.Fatal("console not ready")
	}
	c.Reset()
	if c.String() != "" {
		t.Fatal("reset did not clear")
	}
}
