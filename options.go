package protean

import (
	"fmt"
	"io"
)

// Option configures a Session at construction time.
//
// Options are the imperative sugar over the declarative Scenario spec:
// every modeled option corresponds to a SessionSpec field, and a Session
// is a fleet of one (see Start). New code that wants a portable,
// serializable description of a run should declare a Scenario instead of
// wiring options; the option constructors remain fully supported.
type Option func(*config) error

type config struct {
	scale        Scale
	quantum      uint32
	policy       Policy
	soft         bool
	sharing      bool
	seed         int64
	costs        CostModel
	costsSet     bool
	traceCap     int
	fullReadback bool
	pageIn       uint32
	atomicCDP    bool
	maxFaults    uint64
	tlb1         int
	pfus         int
	budget       uint64
	lintWarnings bool
	timingStats  bool
	lanes        bool
	sink         Sink
	disasmW      io.Writer
	disasmN      int
	metrics      bool
	traceOut     io.Writer
}

// WithQuantum sets the scheduling quantum in cycles. 0 (the default)
// means the session scale's 10 ms quantum.
func WithQuantum(cycles uint32) Option {
	return func(c *config) error {
		c.quantum = cycles
		return nil
	}
}

// WithPolicy selects the CIS circuit-replacement policy.
func WithPolicy(p Policy) Option {
	return func(c *config) error {
		if p < PolicyRoundRobin || p > PolicySecondChance {
			return fmt.Errorf("protean: unknown policy %v", p)
		}
		c.policy = p
		return nil
	}
}

// WithSoftDispatch defers to registered software alternatives under
// contention instead of swapping circuits (§5.1.2). Auto-mode registry
// workloads register their alternatives only when this is on.
func WithSoftDispatch(on bool) Option {
	return func(c *config) error {
		c.soft = on
		return nil
	}
}

// WithSharing lets identical images share one PFU instance (§5.1 notes
// the final system would do this; the paper's runs disable it).
func WithSharing(on bool) Option {
	return func(c *config) error {
		c.sharing = on
		return nil
	}
}

// WithScale shrinks the session by an integer factor while preserving the
// ratios that shape the paper's figures (see Scale). It sets the
// configuration-port bandwidth, the kernel cost model, and the defaults
// for quantum and per-workload work-unit counts.
func WithScale(factor int) Option {
	return func(c *config) error {
		c.scale = Scale{Factor: factor}
		return nil
	}
}

// WithSeed seeds the random replacement policy.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithTrace records the last capacity kernel events and exposes them as
// Result.Trace.
func WithTrace(capacity int) Option {
	return func(c *config) error {
		if capacity <= 0 {
			return fmt.Errorf("protean: trace capacity must be positive, got %d", capacity)
		}
		c.traceCap = capacity
		return nil
	}
}

// WithMetrics collects the run's statistics into a deterministic
// metrics snapshot, exposed as Result.Metrics: kernel, CIS, RFU and
// dispatch-TLB counters under Prometheus-style names, built from serial
// post-run code so the snapshot bytes depend only on the modeled run.
// See Metrics for the snapshot operations (MarshalJSON, WriteProm,
// Diff).
func WithMetrics() Option {
	return func(c *config) error {
		c.metrics = true
		return nil
	}
}

// WithTraceOut writes the run's modeled-cycle timeline to w as Chrome
// trace-event JSON (open it in Perfetto or chrome://tracing): one track
// per process with its sojourn span, instants for every retained kernel
// event (switches, faults, config loads, state save/restore, evictions),
// and an explicit truncation warning if the event ring overflowed.
// Implies a default WithTrace ring when none is configured; timestamps
// are simulated cycles rendered as microseconds.
func WithTraceOut(w io.Writer) Option {
	return func(c *config) error {
		if w == nil {
			return fmt.Errorf("protean: trace output writer must be non-nil")
		}
		c.traceOut = w
		return nil
	}
}

// WithCostModel overrides the kernel cycle cost model (the default is
// DefaultCosts divided by the session scale). The all-zero model is
// reserved as the kernel's "use defaults" sentinel and is rejected; to
// approximate a free kernel, pass 1-cycle costs.
func WithCostModel(cm CostModel) Option {
	return func(c *config) error {
		if cm == (CostModel{}) {
			return fmt.Errorf("protean: zero CostModel means \"use defaults\" in the kernel; pass nonzero (e.g. 1-cycle) costs")
		}
		c.costs = cm
		c.costsSet = true
		return nil
	}
}

// WithFullReadback disables the §4.1 split configuration: evicting a
// circuit reads back the whole static image instead of just the state
// frames (the A2 ablation).
func WithFullReadback(on bool) Option {
	return func(c *config) error {
		c.fullReadback = on
		return nil
	}
}

// WithPageInCycles models §5.1.3's virtual-memory pressure: every full
// configuration load first pages the bitstream in from disk, costing this
// many extra cycles. 0 = bitstreams cached in RAM (the paper's runs).
func WithPageInCycles(cycles uint32) Option {
	return func(c *config) error {
		c.pageIn = cycles
		return nil
	}
}

// WithAtomicCDP makes custom instructions uninterruptible (the §4.4
// design alternative), for interrupt-latency studies.
func WithAtomicCDP(on bool) Option {
	return func(c *config) error {
		c.atomicCDP = on
		return nil
	}
}

// WithMaxFaults kills any process that takes more than n dispatch faults
// (runaway guard); 0 disables.
func WithMaxFaults(n uint64) Option {
	return func(c *config) error {
		c.maxFaults = n
		return nil
	}
}

// WithTLB1Entries overrides the dispatch-TLB size (0 = hardware default).
func WithTLB1Entries(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("protean: TLB1 entries must be >= 0, got %d", n)
		}
		c.tlb1 = n
		return nil
	}
}

// WithPFUs overrides the number of programmable function units on the
// reconfigurable array (0 = the ProteanARM's 4). Fewer PFUs force more
// circuit swapping for the same mix — the knob heterogeneous fleet
// scenarios use to model big and small workstations side by side.
func WithPFUs(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("protean: PFU count must be >= 0, got %d", n)
		}
		c.pfus = n
		return nil
	}
}

// WithBudget caps the simulated cycles of Session.Run; exceeding it is an
// error. 0 means a generous default (2^40 cycles).
func WithBudget(cycles uint64) Option {
	return func(c *config) error {
		c.budget = cycles
		return nil
	}
}

// WithLintWarnings lints every circuit image a spawned program registers
// (see Image.Lint) and emits one EventLintWarning per finding through
// the session's progress sink, once per distinct configuration per
// session. Findings are diagnostics only — dead logic cones, constant
// LUTs, unused flip-flops, floating inputs — and never affect the run;
// behavioural images, which carry no netlist, report nothing. Pair it
// with WithProgress, or the warnings have nowhere to go.
func WithLintWarnings() Option {
	return func(c *config) error {
		c.lintWarnings = true
		return nil
	}
}

// WithTimingStats runs static timing analysis over every circuit image a
// spawned program registers (see Image.Timing) and emits one EventTiming
// with the critical-path summary through the session's progress sink,
// once per distinct configuration per session. The analysis is purely
// informational — depth in LUT levels under the fabric's unit-delay
// model — and never affects the run; behavioural images, which carry no
// netlist, report nothing. Pair it with WithProgress, or the reports
// have nowhere to go.
func WithTimingStats() Option {
	return func(c *config) error {
		c.timingStats = true
		return nil
	}
}

// withLaneEngine stamps bit-sliced 64-lane fabric instances in place of
// scalar ones wherever the RFU stamps instances itself. Unexported, and
// deliberately absent from SessionSpec: it is a host-side execution
// strategy with bit-identical results, not a modeled machine knob — the
// fleet batch runner applies it when it folds a group of identical jobs
// into one lane-engine session.
func withLaneEngine() Option {
	return func(c *config) error {
		c.lanes = true
		return nil
	}
}

// WithProgress streams structured progress events (run start, process
// exits, run completion) to sink. The sink must be safe for concurrent
// use; see WriterSink for a ready-made line renderer.
func WithProgress(sink Sink) Option {
	return func(c *config) error {
		c.sink = sink
		return nil
	}
}

// WithDisasm streams a disassembly of the first maxInstrs executed
// instructions to w — the -disasm debugging aid of cmd/proteansim.
func WithDisasm(w io.Writer, maxInstrs int) Option {
	return func(c *config) error {
		if w == nil || maxInstrs <= 0 {
			return fmt.Errorf("protean: disasm needs a writer and a positive instruction count")
		}
		c.disasmW = w
		c.disasmN = maxInstrs
		return nil
	}
}
