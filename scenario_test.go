package protean_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"protean"
)

// testScenario is the spec-form twin of testFleet + fleetMix: a 4-node
// fleet at a fast scale, tight 2-slot stores, uniform open-loop arrivals,
// and a thrash-heavy heterogeneous job rotation.
func testScenario(jobs int) protean.Scenario {
	rotation := []string{"alpha/hw-nosoft", "twofish/hw-nosoft", "echo/hw-nosoft"}
	sc := protean.Scenario{
		Seed: 7,
		Nodes: []protean.NodeSpec{{
			Count:      4,
			StoreSlots: 2,
			Session: protean.SessionSpec{
				Scale:   800,
				Quantum: protean.Quantum1ms / 800,
				Policy:  "round-robin",
			},
		}},
		Arrivals: protean.ArrivalSpec{Process: protean.ArrivalUniform, MeanGap: 40_000},
	}
	for i := 0; i < jobs; i++ {
		sc.Jobs = append(sc.Jobs, protean.JobSpec{Workload: rotation[i%len(rotation)], Instances: 2})
	}
	return sc
}

// TestScenarioRoundTrip pins the serialization inverse:
// LoadScenario(MarshalJSON(sc)) must reproduce the scenario exactly.
func TestScenarioRoundTrip(t *testing.T) {
	sc := testScenario(6)
	sc.Workers = 2
	sc.Admission = protean.AdmissionSpec{Bound: 3, Policy: protean.AdmissionShed}
	sc.Placement = protean.PlacementSpec{Policy: "weighted-affinity", Weight: 123_456}
	sc.Nodes = append(sc.Nodes, protean.NodeSpec{ClockScale: 2, Session: protean.SessionSpec{
		Scale: 800, PFUs: 2, SoftDispatch: true, MaxFaults: 10,
		Costs: protean.CostModel{ContextSwitch: 1, FaultEntry: 1, SyscallEntry: 1, MapInstall: 1, ScheduleDecision: 1},
	}})

	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := protean.LoadScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, sc)
	}

	// Trace arrivals round-trip their times.
	tr := testScenario(3)
	tr.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, Times: []uint64{0, 10, 10}}
	data, err = json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err = protean.LoadScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("trace round trip drifted: %+v", got)
	}
}

// TestScenarioGolden keeps the checked-in spec files honest: each must
// load, validate, and re-marshal to exactly its own bytes, so any schema
// drift shows up as a diff against testdata/.
func TestScenarioGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/scenario_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected at least 2 golden scenario specs, found %v", files)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := protean.LoadScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			out, err := json.MarshalIndent(sc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, '\n')
			if !bytes.Equal(out, data) {
				t.Errorf("golden drift: re-marshaling %s changes it.\nGot:\n%s\nWant:\n%s", file, out, data)
			}
		})
	}
}

// TestScenarioValidation exercises the rejection surface: structurally
// broken specs must fail at load/validate time, before any simulation.
func TestScenarioValidation(t *testing.T) {
	mutate := func(f func(*protean.Scenario)) protean.Scenario {
		sc := testScenario(3)
		f(&sc)
		return sc
	}
	cases := map[string]protean.Scenario{
		"zero nodes":           mutate(func(sc *protean.Scenario) { sc.Nodes = nil }),
		"negative node count":  mutate(func(sc *protean.Scenario) { sc.Nodes[0].Count = -1 }),
		"negative store slots": mutate(func(sc *protean.Scenario) { sc.Nodes[0].StoreSlots = -2 }),
		"negative clock scale": mutate(func(sc *protean.Scenario) { sc.Nodes[0].ClockScale = -1 }),
		"bad session policy":   mutate(func(sc *protean.Scenario) { sc.Nodes[0].Session.Policy = "fifo" }),
		"negative PFUs":        mutate(func(sc *protean.Scenario) { sc.Nodes[0].Session.PFUs = -4 }),
		"unknown placement":    mutate(func(sc *protean.Scenario) { sc.Placement.Policy = "gravity" }),
		"weight on non-hybrid": mutate(func(sc *protean.Scenario) { sc.Placement = protean.PlacementSpec{Policy: "random", Weight: 5} }),
		"negative queue bound": mutate(func(sc *protean.Scenario) { sc.Admission.Bound = -1 }),
		"admission w/o bound":  mutate(func(sc *protean.Scenario) { sc.Admission = protean.AdmissionSpec{Policy: protean.AdmissionShed} }),
		"bad admission policy": mutate(func(sc *protean.Scenario) { sc.Admission = protean.AdmissionSpec{Bound: 1, Policy: "drop"} }),
		"unknown arrivals":     mutate(func(sc *protean.Scenario) { sc.Arrivals.Process = "bursty" }),
		"uniform w/o gap":      mutate(func(sc *protean.Scenario) { sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalUniform} }),
		"batch with gap":       mutate(func(sc *protean.Scenario) { sc.Arrivals = protean.ArrivalSpec{MeanGap: 100} }),
		"short trace": mutate(func(sc *protean.Scenario) {
			sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, Times: []uint64{0}}
		}),
		"decreasing trace": mutate(func(sc *protean.Scenario) {
			sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, Times: []uint64{9, 3, 12}}
		}),
		"overflowing trace": mutate(func(sc *protean.Scenario) {
			sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, Times: []uint64{0, 1 << 62, 1<<64 - 2}}
		}),
		"runaway node count": mutate(func(sc *protean.Scenario) { sc.Nodes[0].Count = 2_000_000_000 }),
		"runaway job count":  mutate(func(sc *protean.Scenario) { sc.Jobs[0].Count = 2_000_000_000 }),
		"no jobs":            mutate(func(sc *protean.Scenario) { sc.Jobs = nil }),
		"unknown workload":   mutate(func(sc *protean.Scenario) { sc.Jobs[0].Workload = "fft" }),
		"negative instances": mutate(func(sc *protean.Scenario) { sc.Jobs[0].Instances = -1 }),
		"negative items":     mutate(func(sc *protean.Scenario) { sc.Jobs[0].Items = -7 }),
		"negative job count": mutate(func(sc *protean.Scenario) { sc.Jobs[0].Count = -1 }),
		"huge open-loop gap": mutate(func(sc *protean.Scenario) { sc.Arrivals.MeanGap = 1 << 60 }),
		"poisson w/o gap":    mutate(func(sc *protean.Scenario) { sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalPoisson} }),
		"trace with gap": mutate(func(sc *protean.Scenario) {
			sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, MeanGap: 5, Times: []uint64{0, 1, 2}}
		}),
		"negative TLB1 size": mutate(func(sc *protean.Scenario) { sc.Nodes[0].Session.TLB1Entries = -1 }),
	}
	for name, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if _, err := json.Marshal(sc); err == nil {
			t.Errorf("%s: marshaled", name)
		}
		if _, err := protean.Start(context.Background(), sc); err == nil {
			t.Errorf("%s: started", name)
		}
	}
	// Unknown JSON fields are typos, not extensions.
	if _, err := protean.LoadScenario([]byte(`{"nodes":[{}],"jobs":[{"workload":"alpha"}],"quantum":5}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	// Trailing content (e.g. a botched merge of two spec objects) is an
	// error, not silently dropped settings.
	if _, err := protean.LoadScenario([]byte(`{"nodes":[{}],"jobs":[{"workload":"alpha"}]}{"seed":9}`)); err == nil {
		t.Error("trailing JSON content accepted")
	}
	// A valid scenario must pass all three gates.
	sc := testScenario(3)
	if err := sc.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

// TestScenarioOptionsEquivalence is the tentpole's acceptance check: an
// options-built cluster run, its Scenario snapshot run through Start, and
// the snapshot serialized to JSON and reloaded must all produce
// byte-identical FleetResult CSV and JSON — for every worker count.
func TestScenarioOptionsEquivalence(t *testing.T) {
	const jobs = 9
	baseline := func(workers int) *protean.FleetResult {
		c := testFleet(t, protean.WithClusterWorkers(workers))
		fleetMix(t, c, jobs)
		fr, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	ref := baseline(1)
	refCSV, refJSON := ref.Table().CSV(), mustJSON(t, ref)

	for _, workers := range []int{1, 4, 8} {
		if workers != 1 {
			fr := baseline(workers)
			if got := fr.Table().CSV(); got != refCSV {
				t.Errorf("options-built CSV differs at workers=%d", workers)
			}
		}
		// Spec-built: the hand-written Scenario equivalent to testFleet.
		sc := testScenario(jobs)
		sc.Workers = workers
		fr, err := protean.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if got := fr.Table().CSV(); got != refCSV {
			t.Errorf("spec-built CSV differs from options-built at workers=%d:\n got %s\nwant %s",
				workers, got, refCSV)
		}
		if got := mustJSON(t, fr); !bytes.Equal(got, refJSON) {
			t.Errorf("spec-built JSON differs from options-built at workers=%d", workers)
		}
		// Spec-through-JSON: marshal, reload, run.
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := protean.LoadScenario(data)
		if err != nil {
			t.Fatal(err)
		}
		fr2, err := protean.RunScenario(context.Background(), loaded)
		if err != nil {
			t.Fatal(err)
		}
		if got := fr2.Table().CSV(); got != refCSV {
			t.Errorf("JSON-loaded CSV differs from options-built at workers=%d", workers)
		}
	}

	// The cluster's own snapshot must agree with the hand-written spec's
	// results too (its canonicalized jobs carry explicit items).
	c := testFleet(t)
	fleetMix(t, c, jobs)
	snap := c.Scenario()
	fr, err := protean.RunScenario(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.Table().CSV(); got != refCSV {
		t.Errorf("Cluster.Scenario() snapshot CSV differs from its own Run")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScenarioHeterogeneousNodes checks that node heterogeneity
// measurably moves the FleetResult: a fleet with one double-clock node
// beats the all-reference fleet's makespan, and a starved single-PFU
// node class loads more configurations than the stock machine.
func TestScenarioHeterogeneousNodes(t *testing.T) {
	base := testScenario(6)
	base.Placement = protean.PlacementSpec{Policy: "least-loaded"}
	slow, err := protean.RunScenario(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	fast := testScenario(6)
	fast.Placement = protean.PlacementSpec{Policy: "least-loaded"}
	fast.Nodes[0].Count = 3
	fast.Nodes = append(fast.Nodes, protean.NodeSpec{
		ClockScale: 4,
		StoreSlots: 2,
		Session:    fast.Nodes[0].Session,
	})
	frFast, err := protean.RunScenario(context.Background(), fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := frFast.Err(); err != nil {
		t.Fatal(err)
	}
	if frFast.Makespan >= slow.Makespan {
		t.Errorf("double-clock node did not improve makespan: %d vs %d", frFast.Makespan, slow.Makespan)
	}
	if got := frFast.Nodes[3]; got.ClockScale != 4 || got.Class != 0 {
		t.Errorf("fast node metadata lost: %+v", got)
	}

	// A second node class with 1 PFU must thrash harder on the same jobs:
	// its class sessions reload circuits the 4-PFU class keeps resident.
	starved := testScenario(3)
	starved.Nodes[0].Count = 1
	starved.Nodes = append(starved.Nodes, protean.NodeSpec{
		StoreSlots: 2,
		Session: protean.SessionSpec{
			Scale:   800,
			Quantum: protean.Quantum1ms / 800,
			Policy:  "round-robin",
			PFUs:    1,
		},
	})
	// Round-robin alternates node 0 (4 PFUs) and node 1 (1 PFU); the same
	// job stream must cost the starved class more session loads.
	frMixed, err := protean.RunScenario(context.Background(), starved)
	if err != nil {
		t.Fatal(err)
	}
	if err := frMixed.Err(); err != nil {
		t.Fatal(err)
	}
	var loads4, loads1 uint64
	for _, j := range frMixed.Jobs {
		switch frMixed.Nodes[j.Node].Class {
		case 0:
			loads4 += j.Run.CIS.Loads
		case 1:
			loads1 += j.Run.CIS.Loads
		}
	}
	if loads1 <= loads4 {
		t.Errorf("1-PFU class loads (%d) not above 4-PFU class loads (%d)", loads1, loads4)
	}
}

// TestScenarioPoissonArrivals checks the new arrival process end to end:
// Poisson arrivals change the fleet timeline against uniform jitter at
// the same mean, leave the per-session statistics untouched, and stay
// byte-identical across worker counts (the rng.Exp determinism contract
// at fleet scale).
func TestScenarioPoissonArrivals(t *testing.T) {
	run := func(process string, workers int) *protean.FleetResult {
		sc := testScenario(9)
		sc.Workers = workers
		sc.Arrivals = protean.ArrivalSpec{Process: process, MeanGap: 40_000}
		fr, err := protean.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Err(); err != nil {
			t.Fatal(err)
		}
		return fr
	}
	uni := run(protean.ArrivalUniform, 1)
	poi := run(protean.ArrivalPoisson, 1)
	if reflect.DeepEqual(uni.Jobs, poi.Jobs) {
		t.Error("poisson arrivals indistinguishable from uniform jitter")
	}
	if uni.CIS != poi.CIS {
		t.Errorf("arrival process changed session statistics: %+v vs %+v", uni.CIS, poi.CIS)
	}
	ref := mustJSON(t, poi)
	for _, workers := range []int{4, 8} {
		if got := mustJSON(t, run(protean.ArrivalPoisson, workers)); !bytes.Equal(got, ref) {
			t.Errorf("poisson fleet JSON differs at workers=%d", workers)
		}
	}
}

// TestScenarioTraceArrivals replays an explicit arrival trace and checks
// the jobs inherit exactly those arrival cycles.
func TestScenarioTraceArrivals(t *testing.T) {
	times := []uint64{0, 0, 50_000, 300_000, 300_000, 1_000_000}
	sc := testScenario(6)
	sc.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalTrace, Times: times}
	fr, err := protean.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range fr.Jobs {
		if j.Arrival != times[i] {
			t.Errorf("job %d arrived at %d, trace says %d", i, j.Arrival, times[i])
		}
	}
}

// TestScenarioAdmission checks the admission controller end to end:
// bounded queues shed or defer jobs, both outcomes are visible in the
// FleetResult, and the latency distribution covers exactly the admitted
// jobs.
func TestScenarioAdmission(t *testing.T) {
	base := testScenario(12)
	// Batch arrivals slam every job into the fleet at cycle 0, so a
	// 1-deep bound must reject jobs beyond the first wave.
	base.Arrivals = protean.ArrivalSpec{}

	open, err := protean.RunScenario(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if open.Shed != 0 || open.Deferred != 0 || open.Latency.Jobs != 12 {
		t.Fatalf("unbounded run shed=%d deferred=%d latencyJobs=%d", open.Shed, open.Deferred, open.Latency.Jobs)
	}

	shed := base
	shed.Admission = protean.AdmissionSpec{Bound: 1, Policy: protean.AdmissionShed}
	frShed, err := protean.RunScenario(context.Background(), shed)
	if err != nil {
		t.Fatal(err)
	}
	if frShed.Shed != 8 { // 4 nodes × bound 1 admitted from the batch
		t.Errorf("shed = %d, want 8", frShed.Shed)
	}
	if frShed.Latency.Jobs != 4 {
		t.Errorf("latency sample = %d, want the 4 admitted jobs", frShed.Latency.Jobs)
	}
	for _, j := range frShed.Jobs {
		if j.Shed && (j.Run != nil || j.Node != -1 || j.Latency != 0) {
			t.Errorf("shed job %d carries run state: %+v", j.ID, j)
		}
	}
	if err := frShed.Err(); err != nil {
		t.Errorf("shed jobs are not failures: %v", err)
	}
	if frShed.Makespan >= open.Makespan {
		t.Errorf("shedding did not shorten the makespan: %d vs %d", frShed.Makespan, open.Makespan)
	}
	if frShed.CIS.Loads >= open.CIS.Loads {
		t.Errorf("shed fleet aggregates as much session work as the open one")
	}

	deferred := base
	deferred.Admission = protean.AdmissionSpec{Bound: 1, Policy: protean.AdmissionDefer}
	frDefer, err := protean.RunScenario(context.Background(), deferred)
	if err != nil {
		t.Fatal(err)
	}
	if frDefer.Shed != 0 || frDefer.Deferred != 8 || frDefer.DeferCycles == 0 {
		t.Errorf("defer run shed=%d deferred=%d deferCycles=%d", frDefer.Shed, frDefer.Deferred, frDefer.DeferCycles)
	}
	if frDefer.Latency.Jobs != 12 {
		t.Errorf("defer latency sample = %d, want 12", frDefer.Latency.Jobs)
	}
	if err := frDefer.Err(); err != nil {
		t.Fatal(err)
	}
	// Percentile ordering is a structural invariant of the sample.
	for _, l := range []protean.LatencyStats{open.Latency, frShed.Latency, frDefer.Latency} {
		if l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max || l.Mean == 0 {
			t.Errorf("latency stats disordered: %+v", l)
		}
	}
	// Queueing must dominate tail latency: the batch pile-up's worst
	// sojourn far exceeds a wide-open-loop fleet's.
	relaxed := testScenario(12)
	relaxed.Arrivals = protean.ArrivalSpec{Process: protean.ArrivalUniform, MeanGap: 4_000_000}
	frRelaxed, err := protean.RunScenario(context.Background(), relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if frRelaxed.Latency.Max >= open.Latency.Max {
		t.Errorf("relaxed arrivals tail %d not below batch pile-up tail %d",
			frRelaxed.Latency.Max, open.Latency.Max)
	}
}

// TestScenarioWeightedAffinityHybrid is the hybrid-policy regression: on
// the k-kind rotation over n > k nodes, pure config-affinity pins each
// circuit kind to one node and idles the spare, while round-robin stays
// oblivious to locality. The weighted hybrid must beat affinity on
// makespan and round-robin on configuration loads — on one identical,
// paired job stream (RunPlacements replays policies over the same
// executions).
func TestScenarioWeightedAffinityHybrid(t *testing.T) {
	// 3 circuit kinds (alpha, twofish, echo at 1+1+2 configurations) on a
	// 4-node fleet: n > k, so pure affinity concentrates on 3 nodes.
	c := testFleet(t)
	fleetMix(t, c, 12)
	frs, err := c.RunPlacements(context.Background(),
		protean.PlaceRoundRobin, protean.PlaceAffinity, protean.PlaceWeightedAffinity(0))
	if err != nil {
		t.Fatal(err)
	}
	rr, aff, wa := frs[0], frs[1], frs[2]
	usedNodes := func(fr *protean.FleetResult) int {
		used := 0
		for _, n := range fr.Nodes {
			if n.Jobs > 0 {
				used++
			}
		}
		return used
	}
	if got := usedNodes(aff); got == len(aff.Nodes) {
		t.Fatalf("premise broken: pure affinity used all %d nodes", got)
	}
	if wa.Makespan >= aff.Makespan {
		t.Errorf("hybrid makespan %d not below pure affinity %d", wa.Makespan, aff.Makespan)
	}
	if wa.ConfigLoads() >= rr.ConfigLoads() {
		t.Errorf("hybrid config loads %d not below round-robin %d", wa.ConfigLoads(), rr.ConfigLoads())
	}
	t.Logf("makespan rr=%d aff=%d hybrid=%d; config loads rr=%d aff=%d hybrid=%d (nodes used: %d/%d/%d)",
		rr.Makespan, aff.Makespan, wa.Makespan,
		rr.ConfigLoads(), aff.ConfigLoads(), wa.ConfigLoads(),
		usedNodes(rr), usedNodes(aff), usedNodes(wa))
}

// TestClusterSubmitDuringRun pins the Submit-after-Run-started bugfix:
// once Run is underway (observed from a fleet progress event fired
// mid-run), Submit must error instead of mutating the job list of a
// scenario that has already been resolved.
func TestClusterSubmitDuringRun(t *testing.T) {
	var c *protean.Cluster
	errs := make(chan error, 64)
	sink := protean.SinkFunc(func(e protean.Event) {
		if e.Kind == protean.EventJobDone {
			errs <- c.Submit("alpha/hw-nosoft", 1, 0)
		}
	})
	c = testFleet(t, protean.WithFleetProgress(sink), protean.WithClusterWorkers(2))
	fleetMix(t, c, 3)
	fr, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if err == nil {
			t.Fatal("Submit during a started Run succeeded")
		}
	}
	if n == 0 {
		t.Fatal("no mid-run Submit was attempted")
	}
	// The run must have executed exactly the 3 pre-run submissions.
	if len(fr.Jobs) != 3 {
		t.Errorf("run executed %d jobs, want the 3 submitted before Run", len(fr.Jobs))
	}
	if err := c.Submit("alpha/hw-nosoft", 1, 0); err == nil {
		t.Error("Submit after Run returned succeeded")
	}
}

// TestStartRunner exercises the Start/Wait surface directly: a started
// runner delivers its result to any number of Wait calls, and
// WithRunPlacements returns one FleetResult per policy.
func TestStartRunner(t *testing.T) {
	sc := testScenario(4)
	r, err := protean.Start(context.Background(), sc,
		protean.WithRunPlacements(protean.PlaceRoundRobin, protean.PlaceAffinity))
	if err != nil {
		t.Fatal(err)
	}
	frs, err := r.WaitAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 2 || frs[0].Policy != "round-robin" || frs[1].Policy != "config-affinity" {
		t.Fatalf("WaitAll = %d results (%s, %s)", len(frs), frs[0].Policy, frs[1].Policy)
	}
	fr, err := r.Wait()
	if err != nil || fr != frs[0] {
		t.Errorf("Wait did not return the first result (err=%v)", err)
	}
	// Cancellation propagates out of Wait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err = protean.Start(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(); err == nil {
		t.Error("cancelled scenario run succeeded")
	}
}
