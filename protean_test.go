package protean_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"protean"
	"protean/internal/core"
	"protean/internal/fabric"
)

// testSpec keeps test circuit bitstreams small so configuration stalls do
// not dominate test runtime (the built-in workloads use the real 500-CLB
// spec).
var testSpec = fabric.ArraySpec{W: 5, H: 4}

// addImage is a behavioural 4-cycle adder circuit.
func addImage(name string) *protean.Image {
	return core.NewBehaviouralImage(core.BehaviouralSpec{
		Name:       name,
		Spec:       testSpec,
		StateWords: 1,
		Step: func(st []uint32, a, b uint32, init bool) (uint32, bool) {
			if init {
				st[0] = 1
			} else {
				st[0]++
			}
			return a + b, st[0] >= 4
		},
	})
}

const adderProgram = `
	ldr r0, =desc
	swi 3                      ; register custom instruction CID 7
	mov r0, #30
	mov r1, #12
	mcr p1, 0, r0, c0, c0
	mcr p1, 0, r1, c1, c0
	cdp p1, 7, c2, c0, c1      ; c2 = add(c0, c1) -- faults, loads, reissues
	mrc p1, 0, r2, c2, c0
	mov r0, r2
	swi 5                      ; print result
	mov r0, r2
	swi 0                      ; exit with it
desc:
	.word 7, 0, 0
`

func TestSpawnProgramEndToEnd(t *testing.T) {
	s, err := protean.New(protean.WithQuantum(100_000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.SpawnProgram("quickstart", adderProgram, []*protean.Image{addImage("myadd")})
	if err != nil {
		t.Fatal(err)
	}
	p.Expect(42)
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Console != "42" {
		t.Errorf("console = %q", res.Console)
	}
	if len(res.Procs) != 1 || res.Procs[0].ExitCode != 42 || !res.Procs[0].OK() {
		t.Errorf("procs = %+v", res.Procs)
	}
	if res.CIS.Loads != 1 || res.CIS.Faults == 0 {
		t.Errorf("CIS stats: %+v", res.CIS)
	}
	if res.Cycles == 0 || res.Completion == 0 {
		t.Errorf("cycles=%d completion=%d", res.Cycles, res.Completion)
	}
}

func TestExpectMismatchReported(t *testing.T) {
	s, _ := protean.New()
	p, err := s.SpawnProgram("wrong", "mov r0, #7\n swi 0\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Expect(8)
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Result.Err() = %v, want checksum mismatch", err)
	}
}

// TestHeterogeneousMix is the acceptance scenario: one session running
// alpha, echo and twofish concurrently through the registry, every
// checksum verified against the Go models.
func TestHeterogeneousMix(t *testing.T) {
	s, err := protean.New(
		protean.WithQuantum(protean.Quantum1ms/10),
		protean.WithPolicy(protean.PolicyRandom),
		protean.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("alpha", 2, 2_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("echo", 1, 1_200); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("twofish", 1, 60); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if len(res.Procs) != 4 {
		t.Fatalf("%d processes", len(res.Procs))
	}
	names := map[string]bool{}
	for _, p := range res.Procs {
		if !p.OK() {
			t.Errorf("%s failed: state=%v code=%#x", p.Name, p.State, p.ExitCode)
		}
		names[p.Workload] = true
	}
	for _, want := range []string{"alpha", "echo", "twofish"} {
		if !names[want] {
			t.Errorf("workload %s missing from results", want)
		}
	}
	// PIDs are session-global, so heterogeneous names never collide.
	if _, ok := res.Proc("alpha-hw-nosoft#1"); !ok {
		t.Errorf("expected alpha-hw-nosoft#1 in %v", names)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	s, _ := protean.New()
	if _, err := s.Spawn("alpha", 1, 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v", err)
	}
}

// TestRunCancelledMidFlight runs a program that never exits; only context
// cancellation can end the simulation, and it must do so promptly.
func TestRunCancelledMidFlight(t *testing.T) {
	s, _ := protean.New()
	if _, err := s.SpawnProgram("spin", "loop:\n b loop\n", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	s, _ := protean.New()
	if _, err := s.SpawnProgram("spin", "loop:\n b loop\n", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s, _ := protean.New(protean.WithBudget(10_000))
	if _, err := s.SpawnProgram("spin", "loop:\n b loop\n", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("Run = %v, want budget exhaustion", err)
	}
}

func TestSessionMisuse(t *testing.T) {
	if _, err := protean.New(protean.WithTrace(-1)); err == nil {
		t.Error("negative trace capacity accepted")
	}
	// An all-zero cost model would silently become DefaultCosts in the
	// kernel, so the option must reject it outright.
	if _, err := protean.New(protean.WithCostModel(protean.CostModel{})); err == nil {
		t.Error("zero cost model accepted")
	}
	s, _ := protean.New()
	if _, err := s.Spawn("no-such-app", 1, 10); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := s.Spawn("alpha", 0, 10); err == nil {
		t.Error("zero instances accepted")
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Error("empty session ran")
	}
	// A failed empty Run does not poison the session...
	if _, err := s.Spawn("alpha", 1, 10); err != nil {
		t.Errorf("Spawn after rejected empty Run: %v", err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Errorf("Run after late spawn: %v", err)
	}
	// ...but a completed session is single-shot.
	if _, err := s.Run(context.Background()); err == nil {
		t.Error("second Run accepted")
	}
	if _, err := s.Spawn("alpha", 1, 10); err == nil {
		t.Error("Spawn after Run accepted")
	}
}

// TestWorkloadsSorted pins Workloads' ordering contract: the listing is
// sorted and stays sorted as names register, without ever iterating the
// registry map (the facade is determinism-bound; see internal/lint).
func TestWorkloadsSorted(t *testing.T) {
	names := protean.Workloads()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Workloads() not sorted: %v", names)
	}
	// Register a name that sorts before most built-ins and check it
	// lands in order, not at the end.
	reg := func(name string) {
		t.Helper()
		err := protean.RegisterWorkload(protean.Workload{
			Name: name,
			Build: func(items int, soft bool) (protean.Program, error) {
				return protean.Program{Name: name, Source: "swi 0\n"}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg("aaa/sort-probe")
	reg("zzz/sort-probe")
	after := protean.Workloads()
	if !sort.StringsAreSorted(after) {
		t.Fatalf("Workloads() not sorted after registration: %v", after)
	}
	if len(after) != len(names)+2 {
		t.Fatalf("Workloads() length = %d, want %d", len(after), len(names)+2)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := protean.Workloads()
	for _, want := range []string{
		"alpha", "alpha/hw", "alpha/hw-nosoft", "alpha/baseline", "alpha/gate",
		"echo", "twofish", "twofish/baseline",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in workload %q not registered (have %v)", want, names)
		}
	}
	nopBuild := func(items int, soft bool) (protean.Program, error) {
		return protean.Program{Name: "nop", Source: "swi 0\n"}, nil
	}
	if err := protean.RegisterWorkload(protean.Workload{Name: "alpha", Build: nopBuild}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := protean.RegisterWorkload(protean.Workload{Name: "nobuilder"}); err == nil {
		t.Error("workload without builder accepted")
	}

	// A custom registered workload is spawnable like a built-in.
	err := protean.RegisterWorkload(protean.Workload{
		Name: "custom/answer",
		Build: func(items int, soft bool) (protean.Program, error) {
			return protean.Program{Name: "answer", Source: "mov r0, #42\n swi 0\n"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := protean.New()
	// No BaseItems: the default item count must be rejected...
	if _, err := s.Spawn("custom/answer", 1, 0); err == nil {
		t.Error("spawn without items accepted for workload with no default")
	}
	// ...but an explicit count works.
	if _, err := s.Spawn("custom/answer", 2, 1); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Procs {
		if p.ExitCode != 42 {
			t.Errorf("%s exit = %d", p.Name, p.ExitCode)
		}
	}
}

func TestScaleDefaults(t *testing.T) {
	s := protean.Scale{Factor: 100}
	if got := s.Items("alpha"); got != 40_000 {
		t.Errorf("alpha items at /100 = %d", got)
	}
	if got := s.Items("twofish/baseline"); got != 11_000 {
		t.Errorf("twofish/baseline items at /100 = %d", got)
	}
	if got := s.Items("no-such-app"); got != 0 {
		t.Errorf("unknown workload items = %d", got)
	}
	if q := s.Quantum(protean.Quantum10ms); q != 10_000 {
		t.Errorf("scaled quantum = %d", q)
	}
	var zero protean.Scale
	if zero.ConfigBytesPerCycle() != 1 {
		t.Error("zero scale must behave as factor 1")
	}
}

func TestStructuredProgressEvents(t *testing.T) {
	var events []protean.Event
	s, err := protean.New(protean.WithProgress(protean.SinkFunc(func(e protean.Event) {
		events = append(events, e)
	})))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("alpha", 2, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var starts, exits, dones int
	for _, e := range events {
		switch e.Kind {
		case protean.EventRunStart:
			starts++
			if e.Procs != 2 {
				t.Errorf("run-start procs = %d", e.Procs)
			}
		case protean.EventProcessExit:
			exits++
			if e.PID == 0 || e.Cycle == 0 || !e.OK {
				t.Errorf("proc-exit event: %+v", e)
			}
		case protean.EventRunDone:
			dones++
			if !e.OK {
				t.Errorf("run-done not OK: %+v", e)
			}
		}
	}
	if starts != 1 || exits != 2 || dones != 1 {
		t.Errorf("events: %d starts, %d exits, %d dones", starts, exits, dones)
	}
}

func TestWriterSinkRendersLines(t *testing.T) {
	var buf bytes.Buffer
	sink := protean.WriterSink(&buf)
	sink.Event(protean.Event{Kind: protean.EventCellDone, Message: "preformatted line"})
	sink.Event(protean.Event{Kind: protean.EventRunDone, Label: "x", Cycle: 7})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "preformatted line" || !strings.Contains(lines[1], "run-done") {
		t.Errorf("writer sink output:\n%s", buf.String())
	}
}

func TestWithTraceExposesEvents(t *testing.T) {
	s, _ := protean.New(protean.WithTrace(64))
	if _, err := s.Spawn("alpha", 1, 200); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Trace, "exit") {
		t.Errorf("trace missing exit event:\n%s", res.Trace)
	}
}

func TestParsePolicyFacade(t *testing.T) {
	for _, p := range []protean.Policy{
		protean.PolicyRoundRobin, protean.PolicyRandom, protean.PolicyLRU, protean.PolicySecondChance,
	} {
		got, err := protean.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
}

// --- kernel syscall edge cases exercised through the public API ---

// TestBadRegistrationDescriptor registers a custom instruction whose
// descriptor pointer aims at unmapped memory: the kernel must kill the
// process, not crash the simulation.
func TestBadRegistrationDescriptor(t *testing.T) {
	s, _ := protean.New()
	_, err := s.SpawnProgram("baddesc", `
	ldr r0, =0xF8000000        ; unmapped: descriptor read faults
	swi 3
	mov r0, #0
	swi 0
`, []*protean.Image{addImage("unused")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].State != protean.ProcKilled {
		t.Fatalf("process state = %v, want killed", res.Procs[0].State)
	}
	if res.Kernel.Kills != 1 {
		t.Errorf("kills = %d", res.Kernel.Kills)
	}
	if err := res.Err(); err == nil || !strings.Contains(err.Error(), "killed") {
		t.Errorf("Result.Err() = %v", err)
	}
}

// TestUnregisterNonResident unregisters a CID that was never registered
// (must be a harmless no-op) and one that is registered but has never
// faulted its circuit onto the array, then exits cleanly.
func TestUnregisterNonResident(t *testing.T) {
	s, _ := protean.New()
	p, err := s.SpawnProgram("unreg", `
	mov r0, #5
	swi 7                      ; unregister a CID that was never registered
	ldr r0, =desc
	swi 3                      ; register CID 7
	mov r0, #7
	swi 7                      ; unregister it while non-resident
	mov r0, #42
	swi 0
desc:
	.word 7, 0, 0
`, []*protean.Image{addImage("adder")})
	if err != nil {
		t.Fatal(err)
	}
	p.Expect(42)
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.CIS.Loads != 0 {
		t.Errorf("unregister of a non-resident CID loaded hardware: %+v", res.CIS)
	}
}

// TestFaultStormKill drives the MaxFaults runaway guard through the
// facade: a 1-entry dispatch TLB plus two alternating custom instructions
// make every issue a fault, and the kernel must kill the process once the
// per-process fault budget is spent.
func TestFaultStormKill(t *testing.T) {
	s, err := protean.New(
		protean.WithTLB1Entries(1),
		protean.WithMaxFaults(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	img := addImage("adder")
	_, err = s.SpawnProgram("storm", `
	ldr r0, =d1
	swi 3
	ldr r0, =d2
	swi 3
	mov r1, #1
	mcr p1, 0, r1, c0, c0
	mcr p1, 0, r1, c1, c0
loop:
	cdp p1, 1, c2, c0, c1      ; each issue misses the 1-entry TLB
	cdp p1, 2, c2, c0, c1
	b loop
d1:
	.word 1, 0, 0
d2:
	.word 2, 0, 0
`, []*protean.Image{img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Procs[0]
	if p.State != protean.ProcKilled {
		t.Fatalf("fault storm not killed: state=%v faults=%d", p.State, p.Faults)
	}
	if p.Faults <= 16 {
		t.Errorf("kill before exceeding the fault budget: %d", p.Faults)
	}
	if res.Kernel.Kills != 1 {
		t.Errorf("kills = %d", res.Kernel.Kills)
	}
}

// dirtyImage builds a gate-level bitstream image with deliberate lint
// findings: a dead inverter cone and an unobserved flip-flop, encoded
// without the Optimize pass that would sweep them.
func dirtyImage(t *testing.T, name string) *protean.Image {
	t.Helper()
	// Start from an optimised passthrough (it needs the full PFU port
	// shape) and graft on a dead inverter plus an unobserved flip-flop,
	// bypassing Optimize so the findings survive into the bitstream.
	n := fabric.Passthrough32()
	n.Name = name
	fabric.Optimize(n)
	a, _ := n.PortByName("a")
	latched := fabric.Net(n.NumNets)
	q := latched + 1
	dead := latched + 2
	n.NumNets += 3
	n.LUTs = append(n.LUTs,
		// Feeds only the unobserved flip-flop below.
		fabric.LUT{
			In:    [4]fabric.Net{a.Nets[0], fabric.NilNet, fabric.NilNet, fabric.NilNet},
			Table: fabric.CanonTable(0x1, 1),
			Out:   latched,
		},
		// Feeds nothing at all: a dead cone.
		fabric.LUT{
			In:    [4]fabric.Net{a.Nets[1], fabric.NilNet, fabric.NilNet, fabric.NilNet},
			Table: fabric.CanonTable(0x1, 1),
			Out:   dead,
		})
	n.FFs = append(n.FFs, fabric.FF{D: latched, Q: q})
	cfg, _, err := fabric.Place(n, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := fabric.EncodeStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.NewBitstreamImage(name, bits)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestLintWarningsEmitted pins the opt-in image-lint hook: a session
// built with WithLintWarnings emits one EventLintWarning per finding at
// spawn time, dedupes repeated registrations of the same configuration,
// and stays silent for images with nothing to report.
func TestLintWarningsEmitted(t *testing.T) {
	var mu sync.Mutex
	var got []protean.Event
	sink := protean.SinkFunc(func(e protean.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Kind == protean.EventLintWarning {
			got = append(got, e)
		}
	})
	s, err := protean.New(protean.WithLintWarnings(), protean.WithProgress(sink))
	if err != nil {
		t.Fatal(err)
	}
	img := dirtyImage(t, "dirty")
	if findings := img.Lint(); len(findings) < 2 {
		t.Fatalf("Image.Lint = %v, want a dead cone and an unused FF", findings)
	}
	// Two processes registering the same image: findings reported once.
	for _, name := range []string{"p1", "p2"} {
		if _, err := s.SpawnProgram(name, "mov r0, #0\n swi 0\n", []*protean.Image{img}); err != nil {
			t.Fatal(err)
		}
	}
	// A behavioural image has no netlist: nothing to report.
	if _, err := s.SpawnProgram("p3", "mov r0, #0\n swi 0\n", []*protean.Image{addImage("clean")}); err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("lint events = %v, want the dirty image's findings", got)
	}
	for _, e := range got {
		if e.Label != "dirty" {
			t.Errorf("lint event for image %q: %s", e.Label, e.Message)
		}
		if !strings.Contains(e.Message, "lint: image dirty") {
			t.Errorf("unexpected message %q", e.Message)
		}
	}
	seen := map[string]bool{}
	for _, e := range got {
		if seen[e.Message] {
			t.Errorf("finding reported twice: %q", e.Message)
		}
		seen[e.Message] = true
	}
	// The session without the option stays silent.
	var quiet []protean.Event
	qsink := protean.SinkFunc(func(e protean.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Kind == protean.EventLintWarning {
			quiet = append(quiet, e)
		}
	})
	s2, err := protean.New(protean.WithProgress(qsink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SpawnProgram("p1", "mov r0, #0\n swi 0\n", []*protean.Image{img}); err != nil {
		t.Fatal(err)
	}
	if len(quiet) != 0 {
		t.Errorf("lint events without WithLintWarnings: %v", quiet)
	}
}

// TestSessionSpecLintWarnings pins the scenario spelling of the hook:
// lint_warnings round-trips through the SessionSpec JSON field.
func TestSessionSpecLintWarnings(t *testing.T) {
	sc := protean.Scenario{
		Nodes: []protean.NodeSpec{{Session: protean.SessionSpec{LintWarnings: true}}},
		Jobs:  []protean.JobSpec{{Workload: "echo", Items: 4}},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"lint_warnings":true`) {
		t.Fatalf("saved spec lacks lint_warnings: %s", data)
	}
	back, err := protean.LoadScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Nodes[0].Session.LintWarnings {
		t.Fatal("lint_warnings lost on reload")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}
