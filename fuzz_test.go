package protean_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"protean"
)

// FuzzLoadScenario fuzzes the scenario deserializer: arbitrary bytes
// must never panic or hang LoadScenario (validation builds workload
// templates, so the items cap is load-bearing here), and any spec it
// accepts must round-trip — marshal, reload, re-marshal to identical
// bytes. The committed corpus under testdata/fuzz/FuzzLoadScenario
// replays as plain subtests on every ordinary `go test` run.
func FuzzLoadScenario(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"nodes":[{}],"jobs":[{"workload":"echo","items":4}]}`))
	f.Add([]byte(`{"nodes":[{"count":2,"session":{"scale":100,"policy":"lru","lint_warnings":true}},` +
		`{"clock_scale":2,"store_slots":4,"session":{"scale":100,"pfus":2}}],` +
		`"jobs":[{"workload":"alpha","items":64},{"workload":"twofish","items":8,"count":3}],` +
		`"placement":{"policy":"affinity"}}`))
	f.Add([]byte(`{"nodes":[{"session":{"scale":100}}],` +
		`"jobs":[{"workload":"echo","items":16}],` +
		`"arrivals":{"process":"poisson","mean_gap":5000},` +
		`"admission":{"bound":2,"policy":"defer"},` +
		`"placement":{"policy":"wa","weight":7},"seed":3,"workers":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := protean.LoadScenario(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		saved, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		back, err := protean.LoadScenario(saved)
		if err != nil {
			t.Fatalf("saved spec does not reload: %v\nspec: %s", err, saved)
		}
		resaved, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("reloaded spec does not marshal: %v", err)
		}
		if !bytes.Equal(saved, resaved) {
			t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", saved, resaved)
		}
	})
}
