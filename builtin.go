package protean

import (
	"protean/internal/workload"
)

// basePaperItems gives each paper application's full-scale work-unit
// count, sized so a single accelerated instance completes in ~1.2e8
// cycles, matching the paper's Figure 2 left edge.
var basePaperItems = map[workload.Kind]int{
	workload.Alpha:   4_000_000,
	workload.Echo:    2_400_000,
	workload.Twofish: 1_100_000,
}

// The paper's three applications register under four names each:
//
//	"alpha"            custom instructions; software alternatives are
//	                   registered too iff the session enables software
//	                   dispatch (the mode cmd/proteansim always used)
//	"alpha/hw"         custom instructions + registered software
//	                   alternatives, regardless of session mode
//	"alpha/hw-nosoft"  custom instructions only
//	"alpha/baseline"   the unaccelerated pure-software build
//
// plus "alpha/gate", which runs the blend circuit as its real placed
// bitstream on the fabric simulator instead of the behavioural model.
func init() {
	for _, kind := range workload.Kinds {
		base := basePaperItems[kind]
		mustRegister(Workload{Name: kind.String(), BaseItems: base, Build: autoBuild(kind)})
		for _, mode := range []workload.Mode{workload.ModeHW, workload.ModeHWOnly, workload.ModeBaseline} {
			mustRegister(Workload{
				Name:      kind.String() + "/" + mode.String(),
				BaseItems: base,
				Build:     modeBuild(kind, mode),
			})
		}
	}
	mustRegister(Workload{
		Name:      "alpha/gate",
		BaseItems: basePaperItems[workload.Alpha],
		Build: func(items int, soft bool) (Program, error) {
			// Mode follows the session like bare "alpha", so -soft runs
			// keep their software alternatives with the gate image.
			prog, err := autoBuild(workload.Alpha)(items, soft)
			if err != nil {
				return Program{}, err
			}
			img, err := workload.AlphaGateImage()
			if err != nil {
				return Program{}, err
			}
			prog.Images = []*Image{img}
			return prog, nil
		},
	})
}

// autoBuild picks the build mode from the session: software alternatives
// are only worth registering when the session will dispatch to them.
func autoBuild(kind workload.Kind) func(items int, soft bool) (Program, error) {
	return func(items int, soft bool) (Program, error) {
		mode := workload.ModeHWOnly
		if soft {
			mode = workload.ModeHW
		}
		return buildApp(kind, items, mode)
	}
}

// modeBuild pins the build mode regardless of session configuration.
func modeBuild(kind workload.Kind, mode workload.Mode) func(items int, soft bool) (Program, error) {
	return func(items int, _ bool) (Program, error) {
		return buildApp(kind, items, mode)
	}
}

func buildApp(kind workload.Kind, items int, mode workload.Mode) (Program, error) {
	app, err := workload.Build(kind, items, mode)
	if err != nil {
		return Program{}, err
	}
	expected := app.Expected
	return Program{
		Name:     app.Name,
		Source:   app.Source,
		Images:   app.Images,
		Expected: &expected,
	}, nil
}
