package protean

import (
	"fmt"

	"protean/internal/core"
	"protean/internal/kernel"
)

// Re-exported kernel and machine vocabulary, so facade users never import
// the internal packages for ordinary sessions. (Custom circuit images are
// the one exception: they are built with internal/core and
// internal/fabric, which the examples demonstrate.)
type (
	// Policy selects the CIS circuit-replacement policy.
	Policy = kernel.PolicyKind
	// CostModel charges kernel work to the machine clock, in cycles.
	CostModel = kernel.CostModel
	// CISStats aggregates Custom Instruction Scheduler activity.
	CISStats = kernel.CISStats
	// KernelStats aggregates scheduler activity.
	KernelStats = kernel.KernelStats
	// RFUStats aggregates reconfigurable-functional-unit dispatch activity.
	RFUStats = core.Stats
	// ProcState is a process's lifecycle state.
	ProcState = kernel.ProcState
	// Image is a loadable circuit image (behavioural or gate-level).
	Image = core.Image
)

// Replacement policies.
const (
	PolicyRoundRobin   = kernel.PolicyRoundRobin
	PolicyRandom       = kernel.PolicyRandom
	PolicyLRU          = kernel.PolicyLRU
	PolicySecondChance = kernel.PolicySecondChance
)

// Process states.
const (
	ProcReady  = kernel.ProcReady
	ProcExited = kernel.ProcExited
	ProcKilled = kernel.ProcKilled
)

// DefaultCosts is the ARM7-calibrated kernel cost model sessions use at
// scale 1.
var DefaultCosts = kernel.DefaultCosts

// ParsePolicy is the inverse of Policy.String; it also accepts the short
// command-line spellings "rr" and "2chance".
func ParsePolicy(s string) (Policy, error) { return kernel.ParsePolicy(s) }

// TLBStats counts CAM probes of one dispatch TLB.
type TLBStats struct {
	Lookups uint64
	Misses  uint64
}

// ProcResult is one process's outcome.
type ProcResult struct {
	PID  uint32
	Name string
	// Workload is the registry name the process was spawned from, empty
	// for SpawnProgram processes.
	Workload string
	State    ProcState
	ExitCode uint32
	// Expected is the exit code the process was required to return, nil
	// if none was declared.
	Expected *uint32
	// Start and Completion are the machine cycles at first dispatch and
	// at exit.
	Start      uint64
	Completion uint64
	Switches   uint64
	Faults     uint64
	Instrs     uint64
}

// OK reports whether the process exited cleanly with the expected code.
func (p ProcResult) OK() bool {
	return p.State == ProcExited && (p.Expected == nil || p.ExitCode == *p.Expected)
}

// Result is the structured outcome of Session.Run.
type Result struct {
	// Cycles is the total simulated machine time.
	Cycles uint64
	// Completion is the cycle at which the last process finished — the
	// y-axis of the paper's figures.
	Completion uint64
	// Procs lists every process in spawn order.
	Procs []ProcResult
	// CIS, Kernel and RFU aggregate the run's management activity.
	CIS    CISStats
	Kernel KernelStats
	RFU    RFUStats
	// TLB1 and TLB2 count dispatch-TLB probes.
	TLB1 TLBStats
	TLB2 TLBStats
	// Console is everything the processes printed.
	Console string
	// Trace is the kernel event-trace tail, when WithTrace enabled it.
	Trace string
	// Metrics is the run's deterministic metrics snapshot, when
	// WithMetrics enabled it; nil otherwise.
	Metrics *Metrics `json:"metrics,omitempty"`
}

// Err returns nil when every process exited cleanly with its expected
// code, and an error describing the first failure otherwise.
func (r *Result) Err() error {
	for _, p := range r.Procs {
		if p.State != ProcExited {
			return fmt.Errorf("protean: %s did not exit cleanly (%v)", p.Name, p.State)
		}
		if p.Expected != nil && p.ExitCode != *p.Expected {
			return fmt.Errorf("protean: %s checksum %#x, want %#x — simulation corrupted",
				p.Name, p.ExitCode, *p.Expected)
		}
	}
	return nil
}

// Proc returns the result for a process by name.
func (r *Result) Proc(name string) (ProcResult, bool) {
	for _, p := range r.Procs {
		if p.Name == name {
			return p, true
		}
	}
	return ProcResult{}, false
}
