// Package protean is the public face of the ProteanARM reproduction of
// "Managing a Reconfigurable Processor in a General Purpose Workstation
// Environment" (Dales, 2003): one API for building and running simulated
// sessions of the POrSCHE kernel managing applications that use custom
// instructions on a reconfigurable functional unit.
//
// The primary surface is declarative: a Scenario is one JSON-serializable
// value describing an entire run — a fleet of (possibly heterogeneous)
// workstations, an arrival process, admission control, a placement
// policy and the job list — and Start(ctx, scenario) executes it:
//
//	sc, _ := protean.LoadScenario(specJSON)
//	fr, err := protean.RunScenario(ctx, sc) // Start + Wait
//
// A Session is the imperative fleet-of-one spelling of the same thing: a
// machine plus a booted kernel, configured with functional options,
// populated from the named-workload registry (the paper's alpha-blend,
// twofish and echo applications are built in, and heterogeneous mixes
// are just repeated Spawn calls) or with custom programs via
// SpawnProgram, then Run under a context:
//
//	s, _ := protean.New(protean.WithQuantum(protean.Quantum1ms),
//	    protean.WithPolicy(protean.PolicyRandom))
//	s.Spawn("alpha", 2, 30_000)
//	s.Spawn("twofish", 1, 400)
//	res, err := s.Run(ctx)
//
// Run is cancellable through the context and returns a structured Result:
// per-process completions, CIS / kernel / RFU statistics and console
// output, with Result.Err verifying every built-in workload's checksum
// against its Go model. The option constructors (and NewCluster's) are
// retained as compatible sugar over the Scenario spec; new code that
// wants portable, reloadable run descriptions should declare a Scenario.
package protean

import (
	"context"
	"errors"
	"fmt"

	"protean/internal/asm"
	"protean/internal/bus"
	"protean/internal/core"
	"protean/internal/kernel"
	"protean/internal/machine"
	"protean/internal/trace"
)

// Proc is a handle to one spawned process.
type Proc struct {
	PID  uint32
	Name string
	// Workload is the registry name the process came from, empty for
	// SpawnProgram processes.
	Workload string

	expected *uint32
}

// Expect declares the exit code the process must return; Result.Err then
// verifies it. It returns the handle for chaining after SpawnProgram.
func (p *Proc) Expect(code uint32) *Proc {
	c := code
	p.expected = &c
	return p
}

// Session is one configured machine + kernel instance. Sessions are not
// safe for concurrent use; run many sessions in parallel instead (each is
// fully independent — internal/exp's sweep engine does exactly that).
type Session struct {
	cfg   config
	m     *machine.Machine
	k     *kernel.Kernel
	tl    *trace.Log
	procs []*Proc
	ran   bool
	// linted dedupes WithLintWarnings emissions by configuration key, so
	// a session warns once per distinct circuit, not once per spawn.
	linted map[core.ConfigKey]bool
	// timed dedupes WithTimingStats emissions the same way.
	timed map[core.ConfigKey]bool
}

// New builds a session: a ProteanARM machine with a booted POrSCHE kernel,
// parameterised by functional options. The zero configuration is the
// paper's default machine — 4 PFUs, 10 ms quantum, round-robin
// replacement, full-speed (scale 1) simulation.
func New(opts ...Option) (*Session, error) {
	var c config
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	if c.quantum == 0 {
		c.quantum = c.scale.Quantum(Quantum10ms)
	}
	if !c.costsSet {
		c.costs = c.scale.Costs()
	}
	if c.budget == 0 {
		c.budget = 1 << 40
	}
	if c.traceOut != nil && c.traceCap == 0 {
		// WithTraceOut without WithTrace: keep a generous default ring so
		// the exported timeline covers the run.
		c.traceCap = 1 << 16
	}

	m := machine.New(machine.Config{
		ConfigBytesPerCycle: c.scale.ConfigBytesPerCycle(),
		RFU:                 core.Config{PFUs: c.pfus, TLB1Entries: c.tlb1, Lanes: c.lanes},
	})
	var tl *trace.Log
	if c.traceCap > 0 {
		tl = trace.New(c.traceCap)
	}
	kcfg := kernel.Config{
		Quantum:          c.quantum,
		Policy:           c.policy,
		SoftDispatch:     c.soft,
		Sharing:          c.sharing,
		Costs:            c.costs,
		Seed:             c.seed,
		Trace:            tl,
		FullReadback:     c.fullReadback,
		PageInCycles:     c.pageIn,
		AtomicCDP:        c.atomicCDP,
		MaxFaultsPerProc: c.maxFaults,
	}
	if c.disasmW != nil && c.disasmN > 0 {
		left := c.disasmN
		kcfg.InstrHook = func(pc uint32) {
			if left <= 0 {
				return
			}
			left--
			if w, fault := m.Bus.Read32(pc, bus.Fetch); fault == nil {
				fmt.Fprintf(c.disasmW, "%08x  %08x  %s\n", pc, w, asm.Disassemble(w, pc))
			}
		}
	}
	if c.sink != nil {
		sink := c.sink
		kcfg.OnProcExit = func(p *kernel.Process) {
			sink.Event(Event{
				Kind:  EventProcessExit,
				Label: p.Name,
				PID:   p.PID,
				Cycle: p.Stats.CompletionCycle,
				OK:    p.State == kernel.ProcExited,
				Message: fmt.Sprintf("proc %-20s pid=%-4d %s code=%d cycle=%d",
					p.Name, p.PID, p.State, p.ExitCode, p.Stats.CompletionCycle),
			})
		}
	}
	s := &Session{cfg: c, m: m, tl: tl}
	s.k = kernel.New(m, kcfg)
	return s, nil
}

// Quantum returns the effective scheduling quantum in cycles, after the
// default (the session scale's 10 ms) has been applied.
func (s *Session) Quantum() uint32 { return s.cfg.quantum }

// NumPFUs returns the number of programmable function units on the
// session's reconfigurable array.
func (s *Session) NumPFUs() int { return s.m.RFU.NumPFUs() }

// Spawn creates instances of a registered workload. items is the
// work-unit count per instance; pass items <= 0 for the workload's
// scaled default. Mixing workloads is just repeated Spawn calls on one
// session. Processes are named "program#pid", where program is the build
// variant's name (e.g. "alpha-hw-nosoft#1"); use the returned handles or
// ProcResult.Workload to correlate results with registry names.
func (s *Session) Spawn(workload string, instances, items int) ([]*Proc, error) {
	if s.ran {
		return nil, errAlreadyRan
	}
	w, ok := lookupWorkload(workload)
	if !ok {
		return nil, fmt.Errorf("protean: unknown workload %q (registered: %v)", workload, Workloads())
	}
	if instances <= 0 {
		return nil, fmt.Errorf("protean: need at least one instance of %q", workload)
	}
	if items <= 0 {
		items = s.cfg.scale.Items(workload)
		if items <= 0 {
			return nil, fmt.Errorf("protean: workload %q declares no default work-unit count; pass items > 0", workload)
		}
	}
	// Templates are cached process-wide (see templateCache): repeated
	// Spawn calls — a heterogeneous rotation, say — and every other
	// session or sweep cell spawning the same template share one built
	// program and its compiled circuit images. Identical templates are
	// what the CIS sharing mode (WithSharing) matches on.
	prog, err := buildTemplate(w, items, s.cfg.soft)
	if err != nil {
		return nil, fmt.Errorf("protean: build %q: %w", workload, err)
	}
	procs := make([]*Proc, 0, instances)
	for i := 0; i < instances; i++ {
		name := fmt.Sprintf("%s#%d", prog.Name, len(s.procs)+1)
		p, err := s.spawn(name, workload, prog)
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// SpawnProgram assembles and loads a custom program with its circuit
// table, for applications outside the registry. Use Expect on the
// returned handle to have Result.Err verify the exit code.
func (s *Session) SpawnProgram(name, source string, images []*Image) (*Proc, error) {
	if s.ran {
		return nil, errAlreadyRan
	}
	return s.spawn(name, "", Program{Name: name, Source: source, Images: images})
}

func (s *Session) spawn(name, workload string, prog Program) (*Proc, error) {
	// Registry templates recur across sessions and sweep cells at the same
	// deterministic bases, so their assembled programs are cached
	// process-wide; one-off SpawnProgram sources assemble directly (a
	// cache would only retain them forever for a zero hit rate).
	assemble := asm.Assemble
	if workload != "" {
		assemble = assembleCached
	}
	assembled, err := assemble(prog.Source, s.k.NextBase())
	if err != nil {
		return nil, fmt.Errorf("protean: assemble %s: %w", name, err)
	}
	kp, err := s.k.Spawn(name, assembled, prog.Images)
	if err != nil {
		return nil, err
	}
	if s.cfg.lintWarnings {
		s.lintImages(name, prog.Images)
	}
	if s.cfg.timingStats {
		s.timeImages(name, prog.Images)
	}
	p := &Proc{PID: kp.PID, Name: name, Workload: workload, expected: prog.Expected}
	s.procs = append(s.procs, p)
	return p, nil
}

// lintImages emits one EventLintWarning per static-analysis finding in a
// program's circuit images, once per distinct configuration key per
// session (the lint pass itself is cached process-wide; see Image.Lint).
func (s *Session) lintImages(proc string, images []*Image) {
	for _, img := range images {
		if img == nil || s.linted[img.Key()] {
			continue
		}
		if s.linted == nil {
			s.linted = map[core.ConfigKey]bool{}
		}
		s.linted[img.Key()] = true
		for _, msg := range img.Lint() {
			s.emit(Event{
				Kind:    EventLintWarning,
				Label:   img.Name,
				Message: fmt.Sprintf("lint: image %s (registered by %s): %s", img.Name, proc, msg),
			})
		}
	}
}

// timeImages emits one EventTiming per distinct circuit image with its
// static critical-path summary (the analysis is cached process-wide by
// configuration key; see Image.Timing). Images without a decodable
// configuration have no static delay and stay silent.
func (s *Session) timeImages(proc string, images []*Image) {
	for _, img := range images {
		if img == nil || s.timed[img.Key()] {
			continue
		}
		if s.timed == nil {
			s.timed = map[core.ConfigKey]bool{}
		}
		s.timed[img.Key()] = true
		rep := img.Timing()
		if rep == nil {
			continue
		}
		msg := fmt.Sprintf("timing: image %s (registered by %s): depth %d levels, %d LUTs", img.Name, proc, rep.MaxDepth, rep.LUTs)
		if crit := rep.Critical(); crit != nil {
			msg += fmt.Sprintf(", critical %s", crit.Endpoint())
		}
		s.emit(Event{Kind: EventTiming, Label: img.Name, Message: msg})
	}
}

var errAlreadyRan = errors.New("protean: session already run — build a new Session per run")

// Run executes the session until every process has finished, the cycle
// budget is exhausted, or ctx is cancelled. Cancellation is polled every
// few thousand simulated instructions, so a cancelled context stops the
// simulation promptly with an error wrapping ctx.Err(). On success the
// returned Result carries every process outcome and the run statistics;
// call Result.Err to verify checksums.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, errAlreadyRan
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(s.procs) == 0 {
		return nil, fmt.Errorf("protean: nothing to run — spawn a workload first")
	}
	s.ran = true
	s.emit(Event{
		Kind:  EventRunStart,
		Procs: len(s.procs),
		Message: fmt.Sprintf("run: %d processes, quantum %d, policy %s",
			len(s.procs), s.cfg.quantum, s.cfg.policy),
	})
	if err := s.k.Start(); err != nil {
		return nil, err
	}
	var stop func() error
	if ctx.Done() != nil {
		stop = ctx.Err
	}
	if err := s.k.RunUntil(s.cfg.budget, stop); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return nil, fmt.Errorf("protean: run cancelled after %d cycles: %w", s.m.Cycles(), err)
		}
		return nil, err
	}
	res := s.result()
	if s.cfg.metrics {
		res.Metrics = s.metricsSnapshot(res)
	}
	if s.cfg.traceOut != nil {
		if err := s.writeChromeTrace(s.cfg.traceOut, res); err != nil {
			return nil, fmt.Errorf("protean: write trace: %w", err)
		}
	}
	s.emit(Event{
		Kind:  EventRunDone,
		Procs: len(s.procs),
		Cycle: res.Cycles,
		OK:    res.Err() == nil,
		Message: fmt.Sprintf("done: %d processes in %d cycles (%d context switches, %d faults)",
			len(s.procs), res.Cycles, res.Kernel.ContextSwitches, res.CIS.Faults),
	})
	return res, nil
}

func (s *Session) emit(e Event) {
	if s.cfg.sink != nil {
		s.cfg.sink.Event(e)
	}
}

func (s *Session) result() *Result {
	res := &Result{
		Cycles:  s.m.Cycles(),
		CIS:     s.k.CIS.Stats,
		Kernel:  s.k.Stats,
		RFU:     s.m.RFU.Stats,
		TLB1:    TLBStats{Lookups: s.m.RFU.TLB1.Lookups, Misses: s.m.RFU.TLB1.Misses},
		TLB2:    TLBStats{Lookups: s.m.RFU.TLB2.Lookups, Misses: s.m.RFU.TLB2.Misses},
		Console: s.k.Console(),
	}
	if s.tl != nil {
		res.Trace = s.tl.String()
	}
	for i, kp := range s.k.Processes() {
		pr := ProcResult{
			PID:        kp.PID,
			Name:       kp.Name,
			Workload:   s.procs[i].Workload,
			State:      kp.State,
			ExitCode:   kp.ExitCode,
			Expected:   s.procs[i].expected,
			Start:      kp.Stats.StartCycle,
			Completion: kp.Stats.CompletionCycle,
			Switches:   kp.Stats.Switches,
			Faults:     kp.Stats.Faults,
			Instrs:     kp.Stats.UserInstrs,
		}
		if pr.Completion > res.Completion {
			res.Completion = pr.Completion
		}
		res.Procs = append(res.Procs, pr)
	}
	return res
}
