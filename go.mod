module protean

go 1.24
