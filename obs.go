package protean

import (
	"fmt"
	"io"

	"protean/internal/cluster"
	"protean/internal/core"
	"protean/internal/memo"
	"protean/internal/obs"
	"protean/internal/trace"
)

// Metrics is a deterministic, stable-sorted metrics snapshot: the run's
// counters, gauges and fixed-bucket integer histograms, sorted by name.
// Snapshots marshal to stable JSON (MarshalJSON), render in the
// Prometheus text exposition format (WriteProm), and subtract
// (Diff) / combine (Merge) pairwise by metric name. Everything in a
// snapshot is a modeled quantity — simulated cycles and event counts,
// no floats, no wall clock — built from serial replay-side code, so two
// runs of the same spec produce byte-identical snapshots at any worker
// count. Host-side counters that cannot satisfy that contract live in
// HostMetrics instead.
type Metrics = obs.Snapshot

// MetricPoint is one entry in a Metrics snapshot.
type MetricPoint = obs.Metric

// HostMetrics snapshots the host-side process-wide caches: workload
// template, assembled program and compiled circuit-program hit rates.
// These are real process counters — which goroutine wins a build race
// depends on scheduling — so unlike Result.Metrics the values are NOT
// deterministic across worker counts; use them for cache-efficiency
// observability, never in byte-identity comparisons.
func HostMetrics() Metrics {
	r := obs.NewRegistry()
	observeCache(r, "protean_host_template_cache", templateCache.Stats())
	observeCache(r, "protean_host_asm_cache", asmCache.Stats())
	observeCache(r, "protean_host_program_cache", core.ProgramCacheStats())
	return r.Snapshot()
}

func observeCache(r *obs.Registry, prefix string, s memo.CacheStats) {
	r.Counter(prefix+"_hits_total", "cache hits").Add(s.Hits)
	r.Counter(prefix+"_misses_total", "cache misses (builds)").Add(s.Misses)
	r.Gauge(prefix+"_entries", "cached entries").Set(int64(s.Entries))
}

func observeTLB(r *obs.Registry, prefix string, s TLBStats) {
	r.Counter(prefix+"_lookups_total", "dispatch CAM probes").Add(s.Lookups)
	r.Counter(prefix+"_misses_total", "dispatch CAM misses").Add(s.Misses)
}

// sessionBuckets spans session-scale cycle counts: 1k up to ~10^9, ×4
// per bucket.
func sessionBuckets() []uint64 { return obs.ExpBuckets(1024, 4, 10) }

// metricsSnapshot registers the finished session's statistics into a
// fresh registry — kernel, CIS, RFU, both dispatch TLBs, and per-process
// sojourn times — and snapshots it. Runs on the single Run goroutine
// after the simulation, so the bytes depend only on the modeled run.
func (s *Session) metricsSnapshot(res *Result) *Metrics {
	r := obs.NewRegistry()
	res.Kernel.Observe(r)
	res.CIS.Observe(r)
	res.RFU.Observe(r)
	observeTLB(r, "protean_tlb1", res.TLB1)
	observeTLB(r, "protean_tlb2", res.TLB2)
	r.Gauge("protean_session_cycles", "total simulated machine time").Set(int64(res.Cycles))
	r.Counter("protean_session_procs_total", "processes spawned").Add(uint64(len(res.Procs)))
	soj := r.Histogram("protean_session_sojourn_cycles", "first-dispatch-to-exit per process", sessionBuckets())
	for _, pr := range res.Procs {
		soj.Observe(pr.Completion - pr.Start)
	}
	if s.tl != nil {
		r.Counter("protean_trace_events_dropped_total", "kernel events lost to ring overflow").Add(s.tl.Dropped())
	}
	snap := r.Snapshot()
	return &snap
}

// ringEventCat buckets kernel event kinds into Chrome trace categories.
func ringEventCat(k trace.Kind) string {
	switch k {
	case trace.EvSpawn, trace.EvExit, trace.EvSwitch, trace.EvTimer, trace.EvKill:
		return "sched"
	case trace.EvFault, trace.EvSoftMap, trace.EvMapInstall:
		return "dispatch"
	case trace.EvConfigLoad, trace.EvStateSave, trace.EvStateRestore, trace.EvEvict:
		return "config"
	}
	return "kernel"
}

// writeChromeTrace renders the session timeline as Chrome trace-event
// JSON: one track per process carrying its sojourn span (first dispatch
// to exit) plus an instant for every kernel event the trace ring
// retained, and a truncation warning when the ring overflowed. Runs on
// the single Run goroutine — replay-side emission only.
func (s *Session) writeChromeTrace(w io.Writer, res *Result) error {
	t := obs.NewTracer()
	for _, pr := range res.Procs {
		track := int(pr.PID)
		t.SetTrackName(track, fmt.Sprintf("pid %d %s", pr.PID, pr.Name))
		t.Span(track, "proc", pr.Name, pr.Start, pr.Completion,
			obs.Arg{Key: "workload", Val: pr.Workload},
			obs.Arg{Key: "switches", Val: pr.Switches},
			obs.Arg{Key: "faults", Val: pr.Faults})
	}
	if s.tl != nil {
		for _, e := range s.tl.Events() {
			args := []obs.Arg{}
			if e.Note != "" {
				args = append(args, obs.Arg{Key: "note", Val: e.Note})
			}
			t.Instant(int(e.PID), ringEventCat(e.Kind), e.Kind.String(), e.Cycle, args...)
		}
		t.NoteDropped(s.tl.Dropped())
	}
	return t.WriteChromeTrace(w)
}

// fleetMetrics registers the replayed fleet's statistics into a fresh
// registry — the dispatcher trace aggregates (placements, store traffic,
// admission outcomes, sojourn/defer-wait histograms) plus the summed
// per-job session statistics — and snapshots it. Runs on the serial
// replay goroutine, so the bytes are byte-identical at any Execute
// worker count.
func fleetMetrics(tr *cluster.Trace, fr *FleetResult) *Metrics {
	r := obs.NewRegistry()
	tr.Observe(r)
	fr.Kernel.Observe(r)
	fr.CIS.Observe(r)
	fr.RFU.Observe(r)
	var t1, t2 TLBStats
	for _, j := range fr.Jobs {
		if j.Shed || j.Run == nil {
			continue
		}
		t1.Lookups += j.Run.TLB1.Lookups
		t1.Misses += j.Run.TLB1.Misses
		t2.Lookups += j.Run.TLB2.Lookups
		t2.Misses += j.Run.TLB2.Misses
	}
	observeTLB(r, "protean_tlb1", t1)
	observeTLB(r, "protean_tlb2", t2)
	snap := r.Snapshot()
	return &snap
}
