package protean

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"protean/internal/cluster"
	"protean/internal/core"
)

var errClusterRan = errors.New("protean: cluster already run — build a new Cluster per run")

// ConfigKey is the content identity of one circuit configuration — the
// SharedProgram bitstream hash for gate-level images (see core.ConfigKey).
// The cluster dispatcher uses it as the placement-affinity key.
type ConfigKey = core.ConfigKey

// PlacementPolicy decides which simulated node runs each submitted
// cluster job. Implementations must be deterministic given the fleet view
// (see internal/cluster); the built-ins below cover the paper-adjacent
// spectrum from locality-oblivious to configuration-aware.
type PlacementPolicy = cluster.PlacementPolicy

// Built-in placement policies. PlaceAffinity prefers the node whose
// bitstream store already holds the job's configurations, keyed by
// ConfigKey — the paper's configuration-locality cost turned into a
// placement signal.
var (
	PlaceRoundRobin  = cluster.RoundRobin()
	PlaceRandom      = cluster.Random()
	PlaceLeastLoaded = cluster.LeastLoaded()
	PlaceAffinity    = cluster.Affinity()
)

// PlaceWeightedAffinity is the locality-vs-balance hybrid: each node is
// scored weight·affinityHits − backlogCycles and the maximum wins, so
// warm configurations attract work until the queue-length difference
// outweighs them. weight is cycles per warm configuration; 0 means
// DefaultAffinityWeight. In a PlacementSpec this is policy
// "weighted-affinity" with the weight in PlacementSpec.Weight.
func PlaceWeightedAffinity(weight uint64) PlacementPolicy {
	return cluster.WeightedAffinity(weight)
}

// Placements lists the built-in placement policies in sweep order.
func Placements() []PlacementPolicy { return cluster.Policies() }

// ParsePlacement resolves a placement policy by name, accepting the short
// command-line spellings "rr", "ll", "affinity" and "wa".
func ParsePlacement(s string) (PlacementPolicy, error) { return cluster.ParsePlacement(s) }

// ClusterOption configures a Cluster at construction time.
//
// Cluster options are sugar over the declarative Scenario spec: every
// option populates a Scenario field (Cluster.Scenario snapshots the
// result), and Cluster.Run executes through protean.Start exactly like a
// spec loaded from JSON. New code that wants portable run descriptions —
// heterogeneous fleets, admission bounds, Poisson or trace arrivals —
// should declare a Scenario; the option constructors remain fully
// supported for the homogeneous cases they can express.
type ClusterOption func(*clusterConfig) error

type clusterConfig struct {
	nodes     int
	slots     int
	placement PlacementPolicy
	seed      int64
	workers   int
	meanGap   uint64
	lanes     int
	session   []Option
	sink      Sink
}

// WithNodes sets the fleet size (default 4 nodes).
func WithNodes(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("protean: cluster needs at least one node, got %d", n)
		}
		c.nodes = n
		return nil
	}
}

// WithPlacement selects the placement policy (default PlaceRoundRobin).
func WithPlacement(p PlacementPolicy) ClusterOption {
	return func(c *clusterConfig) error {
		if p == nil {
			return fmt.Errorf("protean: nil placement policy")
		}
		c.placement = p
		return nil
	}
}

// WithStoreSlots caps each node's bitstream store at n distinct
// configurations, evicted LRU (default cluster.DefaultStoreSlots). Smaller
// stores make placement locality matter more.
func WithStoreSlots(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("protean: store slots must be positive, got %d", n)
		}
		c.slots = n
		return nil
	}
}

// WithClusterSeed sets the fleet seed: per-job session seeds, arrival
// jitter and placement randomness all derive from it (splitmix,
// internal/rng), so a fleet run is a pure function of its configuration.
func WithClusterSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) error {
		c.seed = seed
		return nil
	}
}

// WithClusterWorkers sizes the job-execution pool; 0 (the default) means
// GOMAXPROCS, 1 runs jobs serially. FleetResult is byte-identical for
// every setting.
func WithClusterWorkers(n int) ClusterOption {
	return func(c *clusterConfig) error {
		c.workers = n
		return nil
	}
}

// WithOpenLoop switches from the default closed-loop batch mode (all jobs
// present at cycle 0) to open-loop arrivals with deterministic uniform
// jitter averaging meanGapCycles — the ArrivalSpec "uniform" process.
// Passing 0 keeps batch mode (so a command-line -gap flag can be
// forwarded unconditionally); gaps above 2^48 cycles (~33 simulated days
// at 100 MHz) are rejected so arrival arithmetic can never overflow the
// fleet clock. For memoryless queueing, declare a Scenario with the
// "poisson" process instead — the uniform jitter is kept for
// reproducibility with option-built fleets.
func WithOpenLoop(meanGapCycles uint64) ClusterOption {
	return func(c *clusterConfig) error {
		if meanGapCycles > cluster.MaxMeanGap {
			return fmt.Errorf("protean: open-loop mean gap %d exceeds the %d-cycle cap", meanGapCycles, uint64(cluster.MaxMeanGap))
		}
		c.meanGap = meanGapCycles
		return nil
	}
}

// WithLanes tunes same-configuration job batching (Scenario.Lanes):
// identical jobs may execute together as lanes of one bit-sliced session,
// up to n per batch. 0 (the default) means auto — the full 64-lane
// width; 1 disables batching; 2..64 caps the batch size. Like
// WithClusterWorkers, a host-side execution knob: the FleetResult is
// byte-identical for every setting.
func WithLanes(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n < 0 || n > cluster.MaxBatch {
			return fmt.Errorf("protean: lanes must be 0 (auto) to %d, got %d", cluster.MaxBatch, n)
		}
		c.lanes = n
		return nil
	}
}

// WithNodeOptions sets the session options every node applies to its job
// runs — quantum, policy, scale, soft dispatch and so on. A WithSeed among
// them is overridden by the per-job derived seed.
func WithNodeOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) error {
		c.session = append(c.session, opts...)
		return nil
	}
}

// WithFleetProgress streams structured fleet events (one EventJobDone per
// executed job, then one EventFleetDone per replayed policy — exactly one
// for a plain Run) to sink. Job events arrive from the worker goroutines
// in completion order; the sink must be safe for concurrent use.
func WithFleetProgress(sink Sink) ClusterOption {
	return func(c *clusterConfig) error {
		c.sink = sink
		return nil
	}
}

// Cluster is a simulated fleet of workstations — each node the machine +
// POrSCHE kernel of a Session — fed from a job queue by a placement
// dispatcher. Build one with NewCluster, fill the queue with Submit, then
// Run it once:
//
//	c, _ := protean.NewCluster(protean.WithNodes(8),
//	    protean.WithPlacement(protean.PlaceAffinity))
//	for i := 0; i < 24; i++ {
//	    c.Submit([]string{"alpha", "twofish", "echo"}[i%3], 2, 0)
//	}
//	fr, err := c.Run(ctx)
//
// A Cluster is option-flavoured sugar over the Scenario spec: the
// configuration it accumulates is exactly a Scenario (snapshot it with
// Cluster.Scenario, serialize it with MarshalJSON), and Run executes
// through protean.Start. Like Session, a Cluster is single-use and not
// safe for concurrent use; its Run executes jobs concurrently internally.
type Cluster struct {
	cfg  clusterConfig
	scfg config // resolved per-job session configuration (scale, soft, …)
	jobs []JobSpec
	ran  bool
}

// NewCluster builds an idle fleet from functional options. The zero
// configuration is 4 nodes, round-robin placement, batch arrivals, seed 1,
// default-scale sessions. Declaring a Scenario and calling Start is the
// spec-first equivalent.
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{nodes: 4, placement: PlaceRoundRobin, seed: 1}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	// Resolve the node session configuration once, so Submit can apply
	// scale defaults and bad session options fail here, not per job.
	var sc config
	for _, opt := range cfg.session {
		if opt == nil {
			continue
		}
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	return &Cluster{cfg: cfg, scfg: sc}, nil
}

// Submit queues instances of a registered workload as one job: all
// instances run together in a single session on whichever node the
// dispatcher picks. items <= 0 means the workload's scaled default.
// Heterogeneous fleets are just repeated Submit calls; the job's
// configuration keys (for affinity placement) come from its workload
// template's images. Submitting to a cluster whose Run has started is an
// error — the job list is part of the scenario the run resolved.
func (c *Cluster) Submit(workload string, instances, items int) error {
	if c.ran {
		return errClusterRan
	}
	if instances <= 0 {
		return fmt.Errorf("protean: need at least one instance of %q", workload)
	}
	if items < 0 {
		items = 0
	}
	// Resolve and build eagerly so unknown workloads, missing defaults
	// and template build errors surface at Submit time, and the snapshot
	// Scenario carries explicit items.
	fj, err := resolveJob(JobSpec{Workload: workload, Instances: instances, Items: items},
		c.scfg.scale, c.scfg.soft)
	if err != nil {
		return fmt.Errorf("protean: %w", err)
	}
	c.jobs = append(c.jobs, JobSpec{Workload: workload, Instances: fj.instances, Items: fj.items})
	return nil
}

// Scenario snapshots the cluster's configuration and job queue as the
// equivalent declarative spec: running the snapshot through Start (or
// serializing it with MarshalJSON and reloading via LoadScenario) yields
// a byte-identical FleetResult. That round trip holds for the built-in
// placement policies; a custom policy snapshots by its Name() only,
// which MarshalJSON/Validate reject as unknown — run such a snapshot by
// passing the policy value itself via WithRunPlacements (what
// Cluster.Run does internally).
func (c *Cluster) Scenario() Scenario {
	sc := Scenario{
		Seed:    c.cfg.seed,
		Workers: c.cfg.workers,
		Lanes:   c.cfg.lanes,
		Nodes: []NodeSpec{{
			Count:      c.cfg.nodes,
			StoreSlots: c.cfg.slots,
			Session:    c.scfg.spec(),
		}},
		Placement: placementSpecOf(c.cfg.placement),
		Jobs:      slices.Clone(c.jobs),
	}
	if c.cfg.meanGap > 0 {
		sc.Arrivals = ArrivalSpec{Process: ArrivalUniform, MeanGap: c.cfg.meanGap}
	}
	return sc
}

// Run simulates the fleet until every submitted job has completed or ctx
// is cancelled. Jobs execute concurrently (WithClusterWorkers) with
// per-job seeds derived from the cluster seed, then placement replays
// deterministically, so the FleetResult is byte-identical for every
// worker count. The first job failure — including cancellation — aborts
// the run.
func (c *Cluster) Run(ctx context.Context) (*FleetResult, error) {
	frs, err := c.RunPlacements(ctx, c.cfg.placement)
	if err != nil {
		return nil, err
	}
	return frs[0], nil
}

// RunPlacements runs the fleet once and replays placement under each of
// the given policies, returning one FleetResult per policy in order.
// Because job executions are node-independent, the expensive session
// simulations happen exactly once and only the cheap dispatcher replay
// differs per policy — the natural shape for paired policy comparisons
// (the F1 placement sweep, the affinity benchmark). The per-job session
// Results are shared between the returned FleetResults; they are
// immutable after the run.
func (c *Cluster) RunPlacements(ctx context.Context, policies ...PlacementPolicy) ([]*FleetResult, error) {
	if c.ran {
		return nil, errClusterRan
	}
	if len(c.jobs) == 0 {
		return nil, fmt.Errorf("protean: nothing to run — submit a job first")
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("protean: no placement policies given")
	}
	opts := []StartOption{WithRunPlacements(policies...)}
	if c.cfg.sink != nil {
		opts = append(opts, WithRunProgress(c.cfg.sink))
	}
	if extras := c.scfg.extraOptions(); len(extras) > 0 {
		opts = append(opts, WithRunSessionOptions(extras...))
	}
	// Mark the cluster consumed before Start launches any goroutine, so
	// a Submit racing the run (e.g. from a progress sink) observes it —
	// the write happens-before the workers exist.
	c.ran = true
	r, err := Start(ctx, c.Scenario(), opts...)
	if err != nil {
		// Resolution failures are validation errors: they do not consume
		// the cluster, matching NewCluster-time option errors; Start
		// spawns nothing when resolution fails.
		c.ran = false
		return nil, err
	}
	return r.WaitAll()
}

// addCIS, addKernel and addRFU fold one job's session statistics into the
// fleet aggregate. Max-style fields (IRQ latency) take the fleet maximum;
// everything else sums.
func addCIS(dst *CISStats, s CISStats) {
	dst.Faults += s.Faults
	dst.MappingFaults += s.MappingFaults
	dst.Loads += s.Loads
	dst.Restores += s.Restores
	dst.Evictions += s.Evictions
	dst.SoftMaps += s.SoftMaps
	dst.ShareHits += s.ShareHits
	dst.ConfigBytes += s.ConfigBytes
	dst.ConfigCycles += s.ConfigCycles
	dst.PageIns += s.PageIns
}

func addKernel(dst *KernelStats, s KernelStats) {
	dst.ContextSwitches += s.ContextSwitches
	dst.TimerIRQs += s.TimerIRQs
	dst.Syscalls += s.Syscalls
	dst.Kills += s.Kills
	dst.KernelCycles += s.KernelCycles
	if s.MaxIRQLatency > dst.MaxIRQLatency {
		dst.MaxIRQLatency = s.MaxIRQLatency
	}
	dst.SumIRQLatency += s.SumIRQLatency
}

func addRFU(dst *RFUStats, s RFUStats) {
	dst.HWDispatches += s.HWDispatches
	dst.SWDispatches += s.SWDispatches
	dst.Faults += s.Faults
	dst.Completions += s.Completions
	dst.Aborts += s.Aborts
	dst.ExecCycles += s.ExecCycles
	dst.ConfigLoads += s.ConfigLoads
	dst.StateSaves += s.StateSaves
	dst.StateRestores += s.StateRestores
}
