package protean

import (
	"context"
	"errors"
	"fmt"

	"protean/internal/cluster"
	"protean/internal/core"
)

var errClusterRan = errors.New("protean: cluster already run — build a new Cluster per run")

// ConfigKey is the content identity of one circuit configuration — the
// SharedProgram bitstream hash for gate-level images (see core.ConfigKey).
// The cluster dispatcher uses it as the placement-affinity key.
type ConfigKey = core.ConfigKey

// PlacementPolicy decides which simulated node runs each submitted
// cluster job. Implementations must be deterministic given the fleet view
// (see internal/cluster); the built-ins below cover the paper-adjacent
// spectrum from locality-oblivious to configuration-aware.
type PlacementPolicy = cluster.PlacementPolicy

// Built-in placement policies. PlaceAffinity prefers the node whose
// bitstream store already holds the job's configurations, keyed by
// ConfigKey — the paper's configuration-locality cost turned into a
// placement signal.
var (
	PlaceRoundRobin  = cluster.RoundRobin()
	PlaceRandom      = cluster.Random()
	PlaceLeastLoaded = cluster.LeastLoaded()
	PlaceAffinity    = cluster.Affinity()
)

// Placements lists the built-in placement policies in sweep order.
func Placements() []PlacementPolicy { return cluster.Policies() }

// ParsePlacement resolves a placement policy by name, accepting the short
// command-line spellings "rr", "ll" and "affinity".
func ParsePlacement(s string) (PlacementPolicy, error) { return cluster.ParsePlacement(s) }

// ClusterOption configures a Cluster at construction time.
type ClusterOption func(*clusterConfig) error

type clusterConfig struct {
	nodes     int
	slots     int
	placement PlacementPolicy
	seed      int64
	workers   int
	meanGap   uint64
	session   []Option
	sink      Sink
}

// WithNodes sets the fleet size (default 4 nodes).
func WithNodes(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("protean: cluster needs at least one node, got %d", n)
		}
		c.nodes = n
		return nil
	}
}

// WithPlacement selects the placement policy (default PlaceRoundRobin).
func WithPlacement(p PlacementPolicy) ClusterOption {
	return func(c *clusterConfig) error {
		if p == nil {
			return fmt.Errorf("protean: nil placement policy")
		}
		c.placement = p
		return nil
	}
}

// WithStoreSlots caps each node's bitstream store at n distinct
// configurations, evicted LRU (default cluster.DefaultStoreSlots). Smaller
// stores make placement locality matter more.
func WithStoreSlots(n int) ClusterOption {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("protean: store slots must be positive, got %d", n)
		}
		c.slots = n
		return nil
	}
}

// WithClusterSeed sets the fleet seed: per-job session seeds, arrival
// jitter and placement randomness all derive from it (splitmix,
// internal/rng), so a fleet run is a pure function of its configuration.
func WithClusterSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) error {
		c.seed = seed
		return nil
	}
}

// WithClusterWorkers sizes the job-execution pool; 0 (the default) means
// GOMAXPROCS, 1 runs jobs serially. FleetResult is byte-identical for
// every setting.
func WithClusterWorkers(n int) ClusterOption {
	return func(c *clusterConfig) error {
		c.workers = n
		return nil
	}
}

// WithOpenLoop switches from the default closed-loop batch mode (all jobs
// present at cycle 0) to open-loop arrivals: jobs arrive with
// deterministic Poisson-ish gaps averaging meanGapCycles. Passing 0
// keeps batch mode (so a command-line -gap flag can be forwarded
// unconditionally); gaps above 2^48 cycles (~33 simulated days at
// 100 MHz) are rejected so arrival arithmetic can never overflow the
// fleet clock.
func WithOpenLoop(meanGapCycles uint64) ClusterOption {
	return func(c *clusterConfig) error {
		if meanGapCycles > cluster.MaxMeanGap {
			return fmt.Errorf("protean: open-loop mean gap %d exceeds the %d-cycle cap", meanGapCycles, uint64(cluster.MaxMeanGap))
		}
		c.meanGap = meanGapCycles
		return nil
	}
}

// WithNodeOptions sets the session options every node applies to its job
// runs — quantum, policy, scale, soft dispatch and so on. A WithSeed among
// them is overridden by the per-job derived seed.
func WithNodeOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) error {
		c.session = append(c.session, opts...)
		return nil
	}
}

// WithFleetProgress streams structured fleet events (one EventJobDone per
// executed job, then one EventFleetDone per replayed policy — exactly one
// for a plain Run) to sink. Job events arrive from the worker goroutines
// in completion order; the sink must be safe for concurrent use.
func WithFleetProgress(sink Sink) ClusterOption {
	return func(c *clusterConfig) error {
		c.sink = sink
		return nil
	}
}

// fleetJob is one submitted job: a workload to run somewhere in the fleet.
type fleetJob struct {
	workload  string
	instances int
	items     int
	job       cluster.Job
}

// Cluster is a simulated fleet of workstations — each node the machine +
// POrSCHE kernel of a Session — fed from a job queue by a placement
// dispatcher. Build one with NewCluster, fill the queue with Submit, then
// Run it once:
//
//	c, _ := protean.NewCluster(protean.WithNodes(8),
//	    protean.WithPlacement(protean.PlaceAffinity))
//	for i := 0; i < 24; i++ {
//	    c.Submit([]string{"alpha", "twofish", "echo"}[i%3], 2, 0)
//	}
//	fr, err := c.Run(ctx)
//
// Like Session, a Cluster is single-use and not safe for concurrent use;
// its Run executes jobs concurrently internally.
type Cluster struct {
	cfg  clusterConfig
	scfg config // resolved per-job session configuration (scale, soft, …)
	jobs []fleetJob
	ran  bool
}

// NewCluster builds an idle fleet from functional options. The zero
// configuration is 4 nodes, round-robin placement, batch arrivals, seed 1,
// default-scale sessions.
func NewCluster(opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{nodes: 4, placement: PlaceRoundRobin, seed: 1}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	// Resolve the node session configuration once, so Submit can apply
	// scale defaults and bad session options fail here, not per job.
	var sc config
	for _, opt := range cfg.session {
		if opt == nil {
			continue
		}
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	return &Cluster{cfg: cfg, scfg: sc}, nil
}

// Submit queues instances of a registered workload as one job: all
// instances run together in a single session on whichever node the
// dispatcher picks. items <= 0 means the workload's scaled default.
// Heterogeneous fleets are just repeated Submit calls; the job's
// configuration keys (for affinity placement) come from its workload
// template's images.
func (c *Cluster) Submit(workload string, instances, items int) error {
	if c.ran {
		return errClusterRan
	}
	w, ok := lookupWorkload(workload)
	if !ok {
		return fmt.Errorf("protean: unknown workload %q (registered: %v)", workload, Workloads())
	}
	if instances <= 0 {
		return fmt.Errorf("protean: need at least one instance of %q", workload)
	}
	if items <= 0 {
		items = c.scfg.scale.Items(workload)
		if items <= 0 {
			return fmt.Errorf("protean: workload %q declares no default work-unit count; pass items > 0", workload)
		}
	}
	prog, err := buildTemplate(w, items, c.scfg.soft)
	if err != nil {
		return fmt.Errorf("protean: build %q: %w", workload, err)
	}
	job := cluster.Job{Label: fmt.Sprintf("%s x%d", prog.Name, instances)}
	for _, img := range prog.Images {
		job.Circuits = append(job.Circuits, cluster.Circuit{
			Key:   cluster.Key(img.Key()),
			Bytes: img.StaticBytes,
		})
	}
	c.jobs = append(c.jobs, fleetJob{
		workload:  workload,
		instances: instances,
		items:     items,
		job:       job,
	})
	return nil
}

// Run simulates the fleet until every submitted job has completed or ctx
// is cancelled. Jobs execute concurrently (WithClusterWorkers) with
// per-job seeds derived from the cluster seed, then placement replays
// deterministically, so the FleetResult is byte-identical for every
// worker count. The first job failure — including cancellation — aborts
// the run.
func (c *Cluster) Run(ctx context.Context) (*FleetResult, error) {
	frs, err := c.RunPlacements(ctx, c.cfg.placement)
	if err != nil {
		return nil, err
	}
	return frs[0], nil
}

// RunPlacements runs the fleet once and replays placement under each of
// the given policies, returning one FleetResult per policy in order.
// Because job executions are node-independent, the expensive session
// simulations happen exactly once and only the cheap dispatcher replay
// differs per policy — the natural shape for paired policy comparisons
// (the F1 placement sweep, the affinity benchmark). The per-job session
// Results are shared between the returned FleetResults; they are
// immutable after the run.
func (c *Cluster) RunPlacements(ctx context.Context, policies ...PlacementPolicy) ([]*FleetResult, error) {
	if c.ran {
		return nil, errClusterRan
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(c.jobs) == 0 {
		return nil, fmt.Errorf("protean: nothing to run — submit a job first")
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("protean: no placement policies given")
	}
	for _, p := range policies {
		if p == nil {
			return nil, fmt.Errorf("protean: nil placement policy")
		}
	}
	c.ran = true

	// results[i] is written by exactly one worker (job i) and read only
	// after the pool joins.
	results := make([]*Result, len(c.jobs))
	runner := func(i int, seed int64) (cluster.Exec, error) {
		j := c.jobs[i]
		opts := make([]Option, 0, len(c.cfg.session)+1)
		opts = append(opts, c.cfg.session...)
		opts = append(opts, WithSeed(seed))
		s, err := New(opts...)
		if err != nil {
			return cluster.Exec{}, err
		}
		if _, err := s.Spawn(j.workload, j.instances, j.items); err != nil {
			return cluster.Exec{}, err
		}
		res, err := s.Run(ctx)
		if err != nil {
			return cluster.Exec{}, err
		}
		results[i] = res
		return cluster.Exec{Cycles: res.Cycles}, nil
	}

	ccfg := cluster.Config{
		Nodes:              c.cfg.nodes,
		StoreSlots:         c.cfg.slots,
		FetchBytesPerCycle: int(c.scfg.scale.ConfigBytesPerCycle()),
		Seed:               c.cfg.seed,
		Workers:            c.cfg.workers,
		Arrivals:           cluster.Arrivals{MeanGap: c.cfg.meanGap},
	}
	if c.cfg.sink != nil {
		sink := c.cfg.sink
		jobs := c.jobs
		ccfg.OnExec = func(i int, e cluster.Exec) {
			// The runner stored results[i] before OnExec fires (same
			// goroutine), so the event can carry the verification verdict.
			ok := results[i] != nil && results[i].Err() == nil
			sink.Event(Event{
				Kind:  EventJobDone,
				Label: jobs[i].job.Label,
				Cycle: e.Cycles,
				OK:    ok,
				Message: fmt.Sprintf("job %-24s executed in %12d cycles (verified=%v)",
					jobs[i].job.Label, e.Cycles, ok),
			})
		}
	}
	jobs := make([]cluster.Job, len(c.jobs))
	for i := range c.jobs {
		jobs[i] = c.jobs[i].job
	}
	execs, err := cluster.Execute(ccfg, jobs, runner)
	if err != nil {
		return nil, err
	}
	frs := make([]*FleetResult, len(policies))
	for pi, pol := range policies {
		ccfg.Policy = pol
		tr, err := cluster.Replay(ccfg, jobs, execs)
		if err != nil {
			return nil, err
		}
		fr := c.assemble(tr, results)
		if c.cfg.sink != nil {
			c.cfg.sink.Event(Event{
				Kind:  EventFleetDone,
				Procs: len(c.jobs),
				Cycle: fr.Makespan,
				OK:    fr.Err() == nil,
				Message: fmt.Sprintf("fleet done: %d jobs on %d nodes (%s), makespan %d, config loads %d (%d cold, %d warm)",
					len(c.jobs), c.cfg.nodes, fr.Policy, fr.Makespan, fr.ConfigLoads(), fr.ColdLoads, fr.WarmHits),
			})
		}
		frs[pi] = fr
	}
	return frs, nil
}

// assemble aggregates the dispatcher trace and the per-job session
// results into a FleetResult.
func (c *Cluster) assemble(tr *cluster.Trace, results []*Result) *FleetResult {
	fr := &FleetResult{
		Policy:      tr.Policy,
		Makespan:    tr.Makespan,
		Busy:        tr.Busy,
		ColdLoads:   tr.ColdLoads,
		WarmHits:    tr.WarmHits,
		FetchCycles: tr.FetchCycles,
	}
	for n, nt := range tr.Nodes {
		fr.Nodes = append(fr.Nodes, NodeResult{
			Node:        n,
			Jobs:        nt.Jobs,
			Busy:        nt.Busy,
			ColdLoads:   nt.ColdLoads,
			WarmHits:    nt.WarmHits,
			FetchCycles: nt.FetchCycles,
			Completion:  nt.Completion,
		})
	}
	for i, jt := range tr.Jobs {
		res := results[i]
		fr.Jobs = append(fr.Jobs, JobResult{
			ID:          jt.ID,
			Label:       jt.Label,
			Workload:    c.jobs[i].workload,
			Node:        jt.Node,
			Arrival:     jt.Arrival,
			Start:       jt.Start,
			Completion:  jt.Completion,
			ColdLoads:   jt.ColdLoads,
			WarmHits:    jt.WarmHits,
			FetchCycles: jt.FetchCycles,
			Run:         res,
		})
		if res != nil {
			addCIS(&fr.CIS, res.CIS)
			addKernel(&fr.Kernel, res.Kernel)
			addRFU(&fr.RFU, res.RFU)
		}
	}
	return fr
}

// addCIS, addKernel and addRFU fold one job's session statistics into the
// fleet aggregate. Max-style fields (IRQ latency) take the fleet maximum;
// everything else sums.
func addCIS(dst *CISStats, s CISStats) {
	dst.Faults += s.Faults
	dst.MappingFaults += s.MappingFaults
	dst.Loads += s.Loads
	dst.Restores += s.Restores
	dst.Evictions += s.Evictions
	dst.SoftMaps += s.SoftMaps
	dst.ShareHits += s.ShareHits
	dst.ConfigBytes += s.ConfigBytes
	dst.ConfigCycles += s.ConfigCycles
	dst.PageIns += s.PageIns
}

func addKernel(dst *KernelStats, s KernelStats) {
	dst.ContextSwitches += s.ContextSwitches
	dst.TimerIRQs += s.TimerIRQs
	dst.Syscalls += s.Syscalls
	dst.Kills += s.Kills
	dst.KernelCycles += s.KernelCycles
	if s.MaxIRQLatency > dst.MaxIRQLatency {
		dst.MaxIRQLatency = s.MaxIRQLatency
	}
	dst.SumIRQLatency += s.SumIRQLatency
}

func addRFU(dst *RFUStats, s RFUStats) {
	dst.HWDispatches += s.HWDispatches
	dst.SWDispatches += s.SWDispatches
	dst.Faults += s.Faults
	dst.Completions += s.Completions
	dst.Aborts += s.Aborts
	dst.ExecCycles += s.ExecCycles
	dst.ConfigLoads += s.ConfigLoads
	dst.StateSaves += s.StateSaves
	dst.StateRestores += s.StateRestores
}
