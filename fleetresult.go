package protean

import (
	"encoding/json"
	"fmt"
	"io"
)

// NodeResult aggregates one node's fleet activity.
type NodeResult struct {
	Node int
	// Class is the node's execution-profile class (nodes with identical
	// session specs share one class); ClockScale is its clock multiplier
	// relative to the reference workstation.
	Class      int
	ClockScale int
	// Jobs is how many jobs the dispatcher placed here.
	Jobs int
	// Busy is the node's total occupied time: job service plus bitstream
	// fetches.
	Busy uint64
	// ColdLoads counts configurations fetched into this node's bitstream
	// store; WarmHits counts placements that found them already resident.
	ColdLoads, WarmHits uint64
	// FetchCycles is the modeled cost of the cold fetches.
	FetchCycles uint64
	// Completion is the cycle the node finally went idle, 0 if unused.
	Completion uint64
}

// JobResult is one job's fleet outcome: where it ran, its fleet timeline,
// and the full session result of its execution.
type JobResult struct {
	// ID is the submission index.
	ID    int
	Label string
	// Workload is the registry name the job was submitted from.
	Workload string
	// Node is where the dispatcher placed it, -1 when admission control
	// shed it.
	Node int
	// Arrival, Start and Completion are fleet-clock cycles.
	Arrival, Start, Completion uint64
	// ColdLoads, WarmHits and FetchCycles are the job's node bitstream
	// store traffic (see NodeResult).
	ColdLoads, WarmHits uint64
	FetchCycles         uint64
	// Latency is the job's sojourn time, Completion − Arrival: queueing
	// (including any admission deferral) plus fetches plus service. 0
	// for shed jobs.
	Latency uint64
	// Shed reports that admission control rejected the job; Deferred
	// that it waited DeferCycles before placement re-ran.
	Shed        bool
	Deferred    bool
	DeferCycles uint64
	// Run is the job's session result (per-process outcomes, CIS / kernel
	// / RFU statistics); nil for shed jobs.
	Run *Result
}

// LatencyStats summarizes the fleet's sojourn-time distribution over
// admitted jobs: integer mean and nearest-rank percentiles, exactly
// reproducible run to run.
type LatencyStats struct {
	// Jobs is the sample size (admitted jobs).
	Jobs int
	// Mean, P50, P95, P99 and Max are cycles of sojourn time.
	Mean, P50, P95, P99, Max uint64
}

// FleetResult is the structured outcome of Cluster.Run.
type FleetResult struct {
	// Policy names the placement policy that drove the run.
	Policy string
	// Nodes and Jobs break the run down per node and per job.
	Nodes []NodeResult
	Jobs  []JobResult
	// Makespan is the cycle at which the last job completed — the fleet
	// analogue of Result.Completion.
	Makespan uint64
	// Busy is total node-busy time; Makespan × nodes − Busy is idle time.
	Busy uint64
	// ColdLoads and WarmHits count fleet-level configuration placements:
	// cold ones fetched a bitstream into a node store (costing
	// FetchCycles), warm ones found it resident — the traffic placement
	// locality saves.
	ColdLoads, WarmHits uint64
	FetchCycles         uint64
	// Shed and Deferred count admission-control outcomes; DeferCycles
	// sums the deferral waits.
	Shed, Deferred int
	DeferCycles    uint64
	// Latency is the sojourn-time distribution over admitted jobs — the
	// tail the admission bound trades against shed work.
	Latency LatencyStats
	// CIS, Kernel and RFU aggregate every admitted job session's
	// statistics (sums; Kernel.MaxIRQLatency is the fleet maximum).
	CIS    CISStats
	Kernel KernelStats
	RFU    RFUStats
	// Metrics is the run's deterministic metrics snapshot, when
	// Scenario.Metrics or WithRunMetrics enabled it; nil otherwise.
	Metrics *Metrics `json:"metrics,omitempty"`
}

// ConfigLoads returns the total full configuration loads anywhere in the
// fleet: every in-session CIS load plus every cold bitstream fetch into a
// node store. This is the quantity configuration-affinity placement
// minimizes — the paper's Figure-2 cost at fleet scale.
func (r *FleetResult) ConfigLoads() uint64 { return r.CIS.Loads + r.ColdLoads }

// Err returns nil when every admitted job's session verified cleanly,
// and an error naming the first failing job otherwise. Shed jobs carry
// no session result and are not failures — consult Shed for them.
func (r *FleetResult) Err() error {
	for _, j := range r.Jobs {
		if j.Shed {
			continue
		}
		if j.Run == nil {
			return fmt.Errorf("protean: job %d (%s) has no session result", j.ID, j.Label)
		}
		if err := j.Run.Err(); err != nil {
			return fmt.Errorf("protean: job %d (%s) on node %d: %w", j.ID, j.Label, j.Node, err)
		}
	}
	return nil
}

// Job returns the result for a job by submission index. Jobs are stored
// in submission order, so this is just a checked index.
func (r *FleetResult) Job(id int) (JobResult, bool) {
	if id < 0 || id >= len(r.Jobs) {
		return JobResult{}, false
	}
	return r.Jobs[id], true
}

// Table returns the per-job fleet outcomes as a tabular dataset — the
// rows WriteCSV serializes, through the same Table path the experiment
// figures use.
func (r *FleetResult) Table() *Table {
	t := &Table{Header: []string{
		"job", "label", "workload", "node", "arrival", "start", "completion",
		"cold_loads", "warm_hits", "fetch_cycles", "session_cycles", "session_loads", "ok",
		"latency", "shed",
	}}
	for _, j := range r.Jobs {
		var cycles, loads uint64
		ok := false
		if j.Run != nil {
			cycles, loads = j.Run.Cycles, j.Run.CIS.Loads
			ok = j.Run.Err() == nil
		}
		t.AddRow(j.ID, j.Label, j.Workload, j.Node, j.Arrival, j.Start, j.Completion,
			j.ColdLoads, j.WarmHits, j.FetchCycles, cycles, loads, ok,
			j.Latency, j.Shed)
	}
	return t
}

// WriteCSV writes the per-job fleet outcomes as CSV.
func (r *FleetResult) WriteCSV(w io.Writer) error { return r.Table().WriteCSV(w) }

// MarshalJSON renders the fleet result with its derived quantities
// attached: the FleetResult fields plus "config_loads" (ConfigLoads) and
// "error" (Err's message, "" on success).
func (r *FleetResult) MarshalJSON() ([]byte, error) {
	type plain FleetResult // drop the method set to avoid recursion
	return json.Marshal(struct {
		*plain
		ConfigLoads uint64 `json:"config_loads"`
		Error       string `json:"error"`
	}{(*plain)(r), r.ConfigLoads(), errString(r.Err())})
}
