package protean

import (
	"fmt"
	"sort"
	"sync"

	"protean/internal/asm"
	"protean/internal/memo"
)

// Program is an assemblable guest program: ARM assembly source plus the
// circuit table its registration syscalls index. It is what a workload
// builder produces and what Session.SpawnProgram loads.
type Program struct {
	// Name labels the process; instances spawned from a registry workload
	// get "name#pid".
	Name string
	// Source is the ARM assembly, assembled at the process's region base.
	Source string
	// Images is the circuit table referenced by index from the
	// registration syscall (SWI 3).
	Images []*Image
	// Expected, when non-nil, is the exit code every instance must return;
	// Result.Err reports mismatches. The built-in workloads set it to
	// their Go-model checksum so every run doubles as a correctness test.
	Expected *uint32
}

// Workload is a named, spawnable application in the registry.
type Workload struct {
	// Name is the registry key, e.g. "alpha" or "twofish/baseline".
	Name string
	// BaseItems is the paper-scale work-unit count that Scale.Items
	// divides; 0 means the workload has no default and Session.Spawn
	// requires an explicit items count.
	BaseItems int
	// Build constructs the program for one instance. items is the
	// work-unit count; soft reports whether the session dispatches to
	// software alternatives under contention, so auto-mode workloads can
	// register them only when they will be used.
	//
	// Build must be deterministic in (items, soft): built programs are
	// cached process-wide and shared by every session that spawns the
	// same template, so identical workloads — repeated Spawns, parallel
	// sweep cells — compile their circuit images exactly once. A Build
	// that closes over mutable state must not mutate it.
	Build func(items int, soft bool) (Program, error)
}

// templateCache memoizes built workload programs process-wide, keyed by
// (workload, items, soft). Programs and their circuit images are immutable
// after Build, so one template — and therefore one compiled circuit
// program per image — backs every session, repeated Spawn and experiment
// sweep cell that requests it, instead of re-building (and for gate-level
// images re-placing and re-encoding) identical circuits per cell.
var templateCache memo.Cache[templateKey, Program]

type templateKey struct {
	workload string
	items    int
	soft     bool
}

// asmCache memoizes assembled programs by (source, origin). Processes
// spawn at deterministic region bases, so a sweep re-running one template
// across many sessions assembles each (template, base) pair once instead
// of once per spawn; assembled programs are immutable (the kernel copies
// the code into machine RAM), so sharing them is safe.
var asmCache memo.Cache[asmKey, *asm.Program]

type asmKey struct {
	source string
	origin uint32
}

// assembleCached assembles source at origin through the process-wide
// cache.
func assembleCached(source string, origin uint32) (*asm.Program, error) {
	return asmCache.Do(asmKey{source: source, origin: origin}, func() (*asm.Program, error) {
		return asm.Assemble(source, origin)
	})
}

// buildTemplate returns the cached program for a workload template,
// building it on first use; every session that spawns the same template
// shares the stored program and its image pointers.
func buildTemplate(w Workload, items int, soft bool) (Program, error) {
	return templateCache.Do(templateKey{workload: w.Name, items: items, soft: soft},
		func() (Program, error) { return w.Build(items, soft) })
}

var registry = struct {
	sync.RWMutex
	m map[string]Workload
	// names mirrors the map's keys in sorted order, maintained at
	// registration time so Workloads never iterates the map (map order
	// is nondeterministic; the facade is a determinism-bound package).
	names []string
}{m: map[string]Workload{}}

// RegisterWorkload adds a named workload to the registry, making it
// spawnable by every Session. Registering an empty name, a nil builder or
// a duplicate name is an error.
func RegisterWorkload(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("protean: workload needs a name")
	}
	if w.Build == nil {
		return fmt.Errorf("protean: workload %q needs a Build function", w.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[w.Name]; dup {
		return fmt.Errorf("protean: workload %q already registered", w.Name)
	}
	registry.m[w.Name] = w
	i := sort.SearchStrings(registry.names, w.Name)
	registry.names = append(registry.names, "")
	copy(registry.names[i+1:], registry.names[i:])
	registry.names[i] = w.Name
	return nil
}

// mustRegister is RegisterWorkload for init-time built-ins.
func mustRegister(w Workload) {
	if err := RegisterWorkload(w); err != nil {
		panic(err)
	}
}

// Workloads lists every registered workload name, sorted.
func Workloads() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, len(registry.names))
	copy(names, registry.names)
	return names
}

// lookupWorkload resolves a registry name.
func lookupWorkload(name string) (Workload, bool) {
	registry.RLock()
	defer registry.RUnlock()
	w, ok := registry.m[name]
	return w, ok
}
