package protean

import (
	"fmt"
	"sort"
	"sync"
)

// Program is an assemblable guest program: ARM assembly source plus the
// circuit table its registration syscalls index. It is what a workload
// builder produces and what Session.SpawnProgram loads.
type Program struct {
	// Name labels the process; instances spawned from a registry workload
	// get "name#pid".
	Name string
	// Source is the ARM assembly, assembled at the process's region base.
	Source string
	// Images is the circuit table referenced by index from the
	// registration syscall (SWI 3).
	Images []*Image
	// Expected, when non-nil, is the exit code every instance must return;
	// Result.Err reports mismatches. The built-in workloads set it to
	// their Go-model checksum so every run doubles as a correctness test.
	Expected *uint32
}

// Workload is a named, spawnable application in the registry.
type Workload struct {
	// Name is the registry key, e.g. "alpha" or "twofish/baseline".
	Name string
	// BaseItems is the paper-scale work-unit count that Scale.Items
	// divides; 0 means the workload has no default and Session.Spawn
	// requires an explicit items count.
	BaseItems int
	// Build constructs the program for one instance. items is the
	// work-unit count; soft reports whether the session dispatches to
	// software alternatives under contention, so auto-mode workloads can
	// register them only when they will be used.
	Build func(items int, soft bool) (Program, error)
}

var registry = struct {
	sync.RWMutex
	m map[string]Workload
}{m: map[string]Workload{}}

// RegisterWorkload adds a named workload to the registry, making it
// spawnable by every Session. Registering an empty name, a nil builder or
// a duplicate name is an error.
func RegisterWorkload(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("protean: workload needs a name")
	}
	if w.Build == nil {
		return fmt.Errorf("protean: workload %q needs a Build function", w.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[w.Name]; dup {
		return fmt.Errorf("protean: workload %q already registered", w.Name)
	}
	registry.m[w.Name] = w
	return nil
}

// mustRegister is RegisterWorkload for init-time built-ins.
func mustRegister(w Workload) {
	if err := RegisterWorkload(w); err != nil {
		panic(err)
	}
}

// Workloads lists every registered workload name, sorted.
func Workloads() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupWorkload resolves a registry name.
func lookupWorkload(name string) (Workload, bool) {
	registry.RLock()
	defer registry.RUnlock()
	w, ok := registry.m[name]
	return w, ok
}
