// Command proteand is the protean fleet daemon: it listens on TCP
// and/or a unix socket, accepts Scenario submissions over the
// length-prefixed binary wire protocol, runs them on the shared
// in-process fleet runner, and streams progress and results back to
// clients. SIGINT/SIGTERM drain gracefully — running jobs finish and
// queued replies flush before the sockets close; a second signal
// forces exit.
//
// Usage:
//
//	proteand [-tcp HOST:PORT] [-unix PATH] [-max-active N] [-queue-depth N] [-name NAME]
//
// With neither -tcp nor -unix, the daemon listens on 127.0.0.1:9190.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	"protean/internal/server"
)

func main() {
	tcpAddr := flag.String("tcp", "", "TCP listen address (host:port)")
	unixPath := flag.String("unix", "", "unix socket listen path")
	name := flag.String("name", "proteand", "server name reported in the handshake")
	maxActive := flag.Int("max-active", runtime.NumCPU(), "max concurrently running jobs (0 = unbounded)")
	queueDepth := flag.Int("queue-depth", 0, "per-connection write queue depth in frames (0 = default)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "proteand: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *tcpAddr == "" && *unixPath == "" {
		*tcpAddr = "127.0.0.1:9190"
	}

	srv := server.New(server.Config{Name: *name, MaxActive: *maxActive, QueueDepth: *queueDepth})
	var wg sync.WaitGroup
	listen := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proteand: listen %s %s: %v\n", network, addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "proteand: listening on %s %s\n", network, addr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(l); err != nil {
				fmt.Fprintf(os.Stderr, "proteand: serve %s %s: %v\n", network, addr, err)
			}
		}()
	}
	if *unixPath != "" {
		// A previous unclean exit may have left the socket file behind;
		// net.Listen would refuse to rebind over it.
		os.Remove(*unixPath)
		listen("unix", *unixPath)
	}
	if *tcpAddr != "" {
		listen("tcp", *tcpAddr)
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "proteand: %v: draining (signal again to force exit)\n", sig)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "proteand: forced exit")
		os.Exit(1)
	}()
	srv.Shutdown()
	wg.Wait()
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	fmt.Fprintln(os.Stderr, "proteand: drained")
}
