// Command experiments regenerates the paper's evaluation: Figure 2 (basic
// scheduling test), Figure 3 (software dispatch test), the claim checks,
// the ablations described in DESIGN.md, the fleet placement sweep (F1,
// DESIGN.md §8) and the admission sweep (F2, DESIGN.md §9).
//
// Usage:
//
//	experiments [-fig 2|3|ablations|claims|cluster|admission|all] [-scale N] [-seed S] [-workers N] [-csv dir] [-metrics dir] [-quiet]
//
// -scale divides the paper-size experiment (see internal/exp.Scale); the
// default of 100 reproduces every figure in a couple of minutes. -scale 1
// is the full-size run (~10^8–10^9 cycles per point).
//
// -metrics writes a Prometheus-style exposition per figure
// (<figure>_metrics.prom) summarising the plotted data: series count,
// point count and the distribution of y values in modeled cycles. The
// dumps derive only from figure data, so they are byte-identical for
// any worker count, like the figures themselves.
//
// -workers sizes the sweep worker pool (default: GOMAXPROCS). Every sweep
// cell is an independent simulation, so the figures are identical for any
// worker count; only the ordering of per-run progress lines on stderr
// changes, because cells report as they complete.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"protean"
	"protean/internal/exp"
	"protean/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 2, 3, ablations, claims, cluster, admission, all")
	scaleF := flag.Int("scale", 100, "scale divisor (1 = paper size)")
	seed := flag.Int64("seed", 1, "seed for the random replacement policy")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "directory to write CSV files into")
	metricsDir := flag.String("metrics", "", "directory to write per-figure metrics expositions into")
	quiet := flag.Bool("quiet", false, "suppress per-run progress")
	twofish3 := flag.Bool("fig3-twofish", false, "include the twofish series the paper omits from figure 3")
	flag.Parse()

	sw := exp.Sweeper{
		Scale:   exp.Scale{Factor: *scaleF},
		Seed:    *seed,
		Workers: *workers,
	}
	if !*quiet {
		sw.Progress = protean.WriterSink(os.Stderr)
	}

	if err := run(*fig, sw, *csvDir, *metricsDir, *twofish3, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// figureMetrics summarises a figure's plotted data as a deterministic
// metrics snapshot: everything derives from Series contents, never from
// host timing, so the exposition is reproducible run to run.
func figureMetrics(f *exp.Figure) obs.Snapshot {
	r := obs.NewRegistry()
	r.Gauge("experiments_series", "series plotted in the figure").Set(int64(len(f.Series)))
	points := r.Counter("experiments_points_total", "data points across all series")
	y := r.Histogram("experiments_y_cycles", "distribution of plotted y values (modeled cycles)",
		obs.ExpBuckets(1024, 4, 12))
	var max uint64
	for _, s := range f.Series {
		for _, v := range s.Y {
			points.Inc()
			y.Observe(v)
			if v > max {
				max = v
			}
		}
	}
	r.Gauge("experiments_y_max_cycles", "largest plotted y value (modeled cycles)").Set(int64(max))
	return r.Snapshot()
}

func run(which string, sw exp.Sweeper, csvDir, metricsDir string, twofish3 bool, out io.Writer) error {
	switch which {
	case "2", "3", "ablations", "claims", "cluster", "admission", "all":
	default:
		return fmt.Errorf("unknown -fig %q (want 2, 3, ablations, claims, cluster, admission or all)", which)
	}
	saveCSV := func(name string, f *exp.Figure) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(csvDir, name), []byte(f.CSV()), 0o644)
	}
	saveMetrics := func(base string, f *exp.Figure) error {
		if metricsDir == "" {
			return nil
		}
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return err
		}
		snap := figureMetrics(f)
		return os.WriteFile(filepath.Join(metricsDir, base+"_metrics.prom"), []byte(snap.Prom()), 0o644)
	}

	var fig2, fig3 *exp.Figure
	var err error

	if which == "2" || which == "all" || which == "claims" {
		fig2, err = sw.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig2.ASCII(64, 20))
		fmt.Fprintln(out, fig2.Table())
		if err := saveCSV("figure2.csv", fig2); err != nil {
			return err
		}
		if err := saveMetrics("figure2", fig2); err != nil {
			return err
		}
	}
	if which == "3" || which == "all" || which == "claims" {
		fig3, err = sw.Figure3(twofish3)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig3.ASCII(64, 20))
		fmt.Fprintln(out, fig3.Table())
		if err := saveCSV("figure3.csv", fig3); err != nil {
			return err
		}
		if err := saveMetrics("figure3", fig3); err != nil {
			return err
		}
	}

	if which == "all" || which == "claims" {
		rows, err := sw.SpeedupTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "C5: acceleration over the unaccelerated builds")
		for _, r := range rows {
			fmt.Fprintf(out, "  %-8s hw=%-12d baseline=%-12d speedup=%.2fx\n",
				r.App, r.HW, r.Baseline, r.Speedup)
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Claim checks against the paper (§5.1):")
		fmt.Fprint(out, exp.FormatClaims(exp.CheckClaims(fig2, fig3, rows)))
		fmt.Fprintln(out)
	}

	if which == "ablations" || which == "all" {
		a1, err := sw.PolicyAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a1.Table())
		if err := saveCSV("ablation_policies.csv", a1); err != nil {
			return err
		}
		if err := saveMetrics("ablation_policies", a1); err != nil {
			return err
		}

		a2, err := sw.ConfigSplitAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a2.Table())
		if err := saveCSV("ablation_split.csv", a2); err != nil {
			return err
		}
		if err := saveMetrics("ablation_split", a2); err != nil {
			return err
		}

		a3, err := sw.TLBAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "A3: dispatch TLB pressure (4 alpha instances, 10ms)")
		fmt.Fprintln(out, "  entries  mapping-faults  loads  completion")
		for _, r := range a3 {
			fmt.Fprintf(out, "  %7d  %14d  %5d  %d\n", r.Entries, r.MappingFaults, r.Loads, r.Completion)
		}
		fmt.Fprintln(out)

		a4, err := sw.QuantumSweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a4.Table())
		if err := saveMetrics("ablation_quantum", a4); err != nil {
			return err
		}

		a5, err := sw.SharingAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a5.Table())
		if err := saveCSV("ablation_sharing.csv", a5); err != nil {
			return err
		}
		if err := saveMetrics("ablation_sharing", a5); err != nil {
			return err
		}

		a6, err := sw.PageInAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "A6: bitstream page-in cost (alpha, 6 instances, 10ms; §5.1.3)")
		fmt.Fprintln(out, "  page-in-cycles  circuit-switching  software-dispatch")
		for _, r := range a6 {
			fmt.Fprintf(out, "  %14d  %17d  %17d\n", r.PageInCycles, r.Switching, r.Soft)
		}
		fmt.Fprintln(out)

		a7, err := sw.InterruptLatencyAblation()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "A7: max timer-IRQ latency vs custom-instruction length (§4.4)")
		fmt.Fprintln(out, "  instr-cycles  atomic-cdp  interruptible-cdp")
		for _, r := range a7 {
			fmt.Fprintf(out, "  %12d  %10d  %17d\n", r.InstrCycles, r.Atomic, r.Interrupt)
		}
		fmt.Fprintln(out)

		a8, err := sw.MixedWorkload()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, a8.Table())
		if err := saveCSV("ablation_mixed.csv", a8); err != nil {
			return err
		}
		if err := saveMetrics("ablation_mixed", a8); err != nil {
			return err
		}
	}

	if which == "cluster" || which == "all" {
		f1m, f1l, err := sw.PlacementSweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f1m.ASCII(64, 20))
		fmt.Fprintln(out, f1m.Table())
		fmt.Fprintln(out, f1l.Table())
		if err := saveCSV("cluster_makespan.csv", f1m); err != nil {
			return err
		}
		if err := saveCSV("cluster_configloads.csv", f1l); err != nil {
			return err
		}
		if err := saveMetrics("cluster_makespan", f1m); err != nil {
			return err
		}
		if err := saveMetrics("cluster_configloads", f1l); err != nil {
			return err
		}
	}

	if which == "admission" || which == "all" {
		f2t, f2s, err := sw.AdmissionSweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f2t.ASCII(64, 20))
		fmt.Fprintln(out, f2t.Table())
		fmt.Fprintln(out, f2s.Table())
		if err := saveCSV("cluster_admission_tail.csv", f2t); err != nil {
			return err
		}
		if err := saveCSV("cluster_admission_shed.csv", f2s); err != nil {
			return err
		}
		if err := saveMetrics("cluster_admission_tail", f2t); err != nil {
			return err
		}
		if err := saveMetrics("cluster_admission_shed", f2s); err != nil {
			return err
		}
	}
	return nil
}
