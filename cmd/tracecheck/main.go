// Command tracecheck validates Chrome trace-event JSON files emitted by
// proteansim -trace-out (or any WithTraceOut/Scenario.TraceOut run): the
// file must parse, traceEvents must be non-empty, and every (pid, tid)
// track's timestamps must be monotone non-decreasing — the properties
// Perfetto needs to render a sane timeline. CI runs it over a traced
// scenario so a regression in the exporter fails fast.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//
// Exits 0 when every file validates; prints the first problem per file
// and exits 1 otherwise.
package main

import (
	"fmt"
	"os"

	"protean/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("tracecheck: %s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}
