// Command proteanlint runs the repo's custom static analyzers
// (determinism, seedflow, sinksafe — see internal/lint) over Go
// packages. Two modes:
//
//	proteanlint [packages]         # standalone, defaults to ./...
//	go vet -vettool=$(which proteanlint) ./...
//
// Standalone mode loads packages itself (internal/lint/load) and exits
// 1 if any diagnostic was reported. As a vettool it speaks the cmd/go
// unitchecker protocol: -V=full prints a version fingerprint for the
// build cache, and a trailing *.cfg argument carries one package's
// type-checking configuration; diagnostics go to stderr with exit
// status 2, matching go vet's conventions.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"protean/internal/lint"
	"protean/internal/lint/analysis"
	"protean/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	// cmd/go probes vettools with -V=full before first use and caches
	// results keyed on the reply; any stable line satisfies it.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("proteanlint version v1\n")
		return
	}
	// cmd/go asks a vettool which analyzer flags it accepts; none here.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// diag is one rendered finding.
type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

// runAnalyzers applies every analyzer to one package, appending
// findings to out.
func runAnalyzers(pkg *load.Package, out *[]diag) error {
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			*out = append(*out, diag{pos: pkg.Fset.Position(d.Pos), analyzer: name, message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return nil
}

// print renders findings sorted by position.
func print(w io.Writer, diags []diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", d.pos, d.analyzer, d.message)
	}
}

// standalone loads the pattern-matched packages and lints them.
func standalone(patterns []string) int {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteanlint:", err)
		return 1
	}
	var diags []diag
	for _, pkg := range pkgs {
		if err := runAnalyzers(pkg, &diags); err != nil {
			fmt.Fprintln(os.Stderr, "proteanlint:", err)
			return 1
		}
	}
	if len(diags) > 0 {
		print(os.Stderr, diags)
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's unitchecker *.cfg payload the
// tool needs to type-check one package.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// unitcheck runs one go vet unit of work.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteanlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "proteanlint: parse cfg:", err)
		return 1
	}
	// cmd/go requires the facts file to exist even though these
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("proteanlint"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "proteanlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := load.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	pkg := &load.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	var diags []diag
	if err := runAnalyzers(pkg, &diags); err != nil {
		fmt.Fprintln(os.Stderr, "proteanlint:", err)
		return 1
	}
	if len(diags) > 0 {
		print(os.Stderr, diags)
		return 2
	}
	return 0
}

// typecheckFailed honours SucceedOnTypecheckFailure: go vet sets it for
// packages whose compile already reported the error.
func typecheckFailed(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "proteanlint: typecheck %s: %v\n", cfg.ImportPath, err)
	return 1
}
