// Command fplstat compiles the stock circuit library onto the ProteanARM's
// 500-CLB PFU fabric and reports synthesis statistics: LUT/FF counts
// before and after optimisation, placement utilisation, wirelength and the
// size of the two configuration sections (§4.1's full image vs state
// frames).
//
// With -lint the tool additionally runs the fabric netlist linter
// (fabric.Lint and fabric.LintConfig) over every optimised circuit and
// its placed configuration, prints any findings, and exits nonzero if a
// circuit is not clean. CI runs fplstat -lint to keep the stock library
// free of dead logic, constant LUTs, unused flip-flops, floating inputs
// and combinational cycles.
package main

import (
	"flag"
	"fmt"
	"os"

	"protean/internal/fabric"
)

func main() {
	w := flag.Int("w", fabric.DefaultPFUSpec.W, "array width in CLBs")
	h := flag.Int("h", fabric.DefaultPFUSpec.H, "array height in CLBs")
	lint := flag.Bool("lint", false, "lint every circuit and placed configuration; exit nonzero on findings")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fplstat: unexpected argument %q (the tool takes flags only)\n", flag.Arg(0))
		os.Exit(2)
	}
	spec := fabric.ArraySpec{W: *w, H: *h}

	circuits := []struct {
		name string
		mk   func() *fabric.Netlist
	}{
		{"pass32", fabric.Passthrough32},
		{"xor32", fabric.Xor32},
		{"add32", fabric.Adder32},
		{"popcount32", fabric.Popcount32},
		{"crc32step", fabric.CRC32Step},
		{"satadd16", fabric.SatAdd16},
		{"seqmul16", fabric.SeqMul16},
		{"alphablend", fabric.AlphaBlend},
		{"barrel32", fabric.BarrelShift32},
		{"lfsr32", fabric.LFSR32},
	}

	fmt.Printf("PFU fabric: %dx%d = %d CLBs; static image %d bytes, state frames %d bytes\n\n",
		spec.W, spec.H, spec.CLBs(), fabric.StaticBytes(spec), fabric.StateBytes(spec))
	fmt.Printf("%-12s %8s %8s %8s %6s %6s %7s %10s %6s\n",
		"circuit", "luts", "luts-opt", "ffs", "depth", "cells", "util%", "wirelength", "maxw")
	findings := 0
	for _, c := range circuits {
		n := c.mk()
		before := n.Stats()
		removed := fabric.Optimize(n)
		after := n.Stats()
		cfg, stats, err := fabric.Place(n, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		bits, err := fabric.EncodeStatic(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		if _, err := fabric.NewPFU(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s failed validation: %v\n", c.name, err)
			os.Exit(1)
		}
		_ = removed
		_ = bits
		fmt.Printf("%-12s %8d %8d %8d %6d %6d %6.1f%% %10d %6d\n",
			c.name, before.LUTs, after.LUTs, after.FFs, after.Depth,
			stats.Cells, stats.Utilization*100, stats.Wirelength, stats.MaxWire)
		if *lint {
			findings += lintCircuit(c.name, n, cfg)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fplstat: lint found %d issue(s)\n", findings)
		os.Exit(1)
	}
}

// lintCircuit lints one optimised netlist and its placed configuration,
// printing every finding, and returns the finding count.
func lintCircuit(name string, n *fabric.Netlist, cfg *fabric.ArrayConfig) int {
	found := 0
	r, err := fabric.Lint(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: lint %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, d := range r.Diags {
		fmt.Fprintf(os.Stderr, "fplstat: %s: netlist: %s: %s\n", name, d.Kind, d.Msg)
		found++
	}
	rc, err := fabric.LintConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: lint %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, d := range rc.Diags {
		fmt.Fprintf(os.Stderr, "fplstat: %s: config: %s: %s\n", name, d.Kind, d.Msg)
		found++
	}
	return found
}
