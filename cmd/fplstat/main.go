// Command fplstat compiles the stock circuit library onto the ProteanARM's
// 500-CLB PFU fabric and reports synthesis statistics: LUT/FF counts
// before and after optimisation, placement utilisation, wirelength and the
// size of the two configuration sections (§4.1's full image vs state
// frames).
//
// With -lint the tool additionally runs the fabric netlist linter
// (fabric.Lint and fabric.LintConfig) over every optimised circuit and
// its placed configuration, prints any findings, and exits nonzero if a
// circuit is not clean. CI runs fplstat -lint to keep the stock library
// free of dead logic, constant LUTs, unused flip-flops, floating inputs
// and combinational cycles.
//
// With -equiv the tool runs the formal equivalence checker (fabric.Equiv)
// over the whole flow for every circuit: the optimiser runs in its
// self-checking mode, the encoded-then-decoded configuration is proved
// equivalent to the optimised netlist, and the compiled program is
// verified against the configuration it was lowered from. Any unproven
// circuit exits nonzero; CI runs fplstat -equiv so the stock library
// ships with proofs, not samples.
//
// With -sta the tool prints each circuit's static timing report
// (fabric.Timing): critical-path depth in LUT levels, the level
// histogram and the critical endpoint with its explicit CLB path. A
// circuit whose configuration cannot be timed exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"protean/internal/fabric"
)

func main() {
	w := flag.Int("w", fabric.DefaultPFUSpec.W, "array width in CLBs")
	h := flag.Int("h", fabric.DefaultPFUSpec.H, "array height in CLBs")
	lint := flag.Bool("lint", false, "lint every circuit and placed configuration; exit nonzero on findings")
	equiv := flag.Bool("equiv", false, "prove optimiser, encoder and compiler preserve every circuit; exit nonzero on unproven")
	sta := flag.Bool("sta", false, "print static timing reports for every placed configuration")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fplstat: unexpected argument %q (the tool takes flags only)\n", flag.Arg(0))
		os.Exit(2)
	}
	spec := fabric.ArraySpec{W: *w, H: *h}

	circuits := []struct {
		name string
		mk   func() *fabric.Netlist
	}{
		{"pass32", fabric.Passthrough32},
		{"xor32", fabric.Xor32},
		{"add32", fabric.Adder32},
		{"popcount32", fabric.Popcount32},
		{"crc32step", fabric.CRC32Step},
		{"satadd16", fabric.SatAdd16},
		{"seqmul16", fabric.SeqMul16},
		{"alphablend", fabric.AlphaBlend},
		{"barrel32", fabric.BarrelShift32},
		{"lfsr32", fabric.LFSR32},
	}

	fmt.Printf("PFU fabric: %dx%d = %d CLBs; static image %d bytes, state frames %d bytes\n\n",
		spec.W, spec.H, spec.CLBs(), fabric.StaticBytes(spec), fabric.StateBytes(spec))
	fmt.Printf("%-12s %8s %8s %8s %6s %6s %7s %10s %6s\n",
		"circuit", "luts", "luts-opt", "ffs", "depth", "cells", "util%", "wirelength", "maxw")
	findings := 0
	for _, c := range circuits {
		n := c.mk()
		before := n.Stats()
		if *equiv {
			_, rep, err := fabric.OptimizeChecked(n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fplstat: %s: optimise proof: %v\n", c.name, err)
				os.Exit(1)
			}
			if !rep.Equivalent {
				fmt.Fprintf(os.Stderr, "fplstat: %s: optimise proof failed: %s\n", c.name, rep)
				os.Exit(1)
			}
		} else {
			fabric.Optimize(n)
		}
		after := n.Stats()
		cfg, stats, err := fabric.Place(n, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		bits, err := fabric.EncodeStatic(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		if _, err := fabric.NewPFU(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s failed validation: %v\n", c.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %8d %8d %8d %6d %6d %6.1f%% %10d %6d\n",
			c.name, before.LUTs, after.LUTs, after.FFs, after.Depth,
			stats.Cells, stats.Utilization*100, stats.Wirelength, stats.MaxWire)
		if *lint {
			findings += lintCircuit(c.name, n, cfg)
		}
		if *equiv {
			proveCircuit(c.name, n, bits)
		}
		if *sta {
			staCircuit(c.name, cfg)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fplstat: lint found %d issue(s)\n", findings)
		os.Exit(1)
	}
}

// lintCircuit lints one optimised netlist and its placed configuration,
// printing every finding, and returns the finding count.
func lintCircuit(name string, n *fabric.Netlist, cfg *fabric.ArrayConfig) int {
	found := 0
	r, err := fabric.Lint(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: lint %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, d := range r.Diags {
		fmt.Fprintf(os.Stderr, "fplstat: %s: netlist: %s: %s\n", name, d.Kind, d.Msg)
		found++
	}
	rc, err := fabric.LintConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: lint %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, d := range rc.Diags {
		fmt.Fprintf(os.Stderr, "fplstat: %s: config: %s: %s\n", name, d.Kind, d.Msg)
		found++
	}
	return found
}

// proveCircuit proves the rest of the flow for one optimised netlist:
// the encoded-then-decoded configuration implements the netlist, and
// the compiled program implements the configuration. The optimiser's
// own proof ran in OptimizeChecked, so together the chain covers source
// netlist -> optimised netlist -> bitstream -> compiled program. Exits
// nonzero on any unproven step.
func proveCircuit(name string, n *fabric.Netlist, bits []byte) {
	img, err := fabric.Decode(bits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: %s: decode: %v\n", name, err)
		os.Exit(1)
	}
	rep, err := fabric.EquivConfig(img.Config, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: %s: config proof: %v\n", name, err)
		os.Exit(1)
	}
	if !rep.Equivalent {
		fmt.Fprintf(os.Stderr, "fplstat: %s: decoded configuration differs from netlist: %s\n", name, rep)
		os.Exit(1)
	}
	prog, err := fabric.Compile(img.Config)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: %s: compile: %v\n", name, err)
		os.Exit(1)
	}
	vrep, err := prog.Verify(img.Config)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: %s: compiled proof: %v\n", name, err)
		os.Exit(1)
	}
	if !vrep.Equivalent {
		fmt.Fprintf(os.Stderr, "fplstat: %s: compiled program differs from configuration: %s\n", name, vrep)
		os.Exit(1)
	}
	fmt.Printf("  equiv %s: proved (%d outputs, %d registers, %d rounds, %d nodes)\n",
		name, rep.Outputs, rep.Registers, rep.Rounds, rep.Nodes)
}

// staCircuit prints the static timing report for one placed
// configuration, exiting nonzero if it cannot be timed.
func staCircuit(name string, cfg *fabric.ArrayConfig) {
	rep, err := fabric.Timing(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fplstat: %s: timing: %v\n", name, err)
		os.Exit(1)
	}
	rep.Name = name
	fmt.Printf("  %s\n", indentReport(rep.String()))
}

// indentReport keeps multi-line reports aligned under the stats table.
func indentReport(s string) string {
	out := make([]byte, 0, len(s)+16)
	for i := 0; i < len(s); i++ {
		out = append(out, s[i])
		if s[i] == '\n' {
			out = append(out, ' ', ' ')
		}
	}
	return string(out)
}
