// Command fplstat compiles the stock circuit library onto the ProteanARM's
// 500-CLB PFU fabric and reports synthesis statistics: LUT/FF counts
// before and after optimisation, placement utilisation, wirelength and the
// size of the two configuration sections (§4.1's full image vs state
// frames).
package main

import (
	"flag"
	"fmt"
	"os"

	"protean/internal/fabric"
)

func main() {
	w := flag.Int("w", fabric.DefaultPFUSpec.W, "array width in CLBs")
	h := flag.Int("h", fabric.DefaultPFUSpec.H, "array height in CLBs")
	flag.Parse()
	spec := fabric.ArraySpec{W: *w, H: *h}

	circuits := []struct {
		name string
		mk   func() *fabric.Netlist
	}{
		{"pass32", fabric.Passthrough32},
		{"xor32", fabric.Xor32},
		{"add32", fabric.Adder32},
		{"popcount32", fabric.Popcount32},
		{"crc32step", fabric.CRC32Step},
		{"satadd16", fabric.SatAdd16},
		{"seqmul16", fabric.SeqMul16},
		{"alphablend", fabric.AlphaBlend},
		{"barrel32", fabric.BarrelShift32},
		{"lfsr32", fabric.LFSR32},
	}

	fmt.Printf("PFU fabric: %dx%d = %d CLBs; static image %d bytes, state frames %d bytes\n\n",
		spec.W, spec.H, spec.CLBs(), fabric.StaticBytes(spec), fabric.StateBytes(spec))
	fmt.Printf("%-12s %8s %8s %8s %6s %6s %7s %10s %6s\n",
		"circuit", "luts", "luts-opt", "ffs", "depth", "cells", "util%", "wirelength", "maxw")
	for _, c := range circuits {
		n := c.mk()
		before := n.Stats()
		removed := fabric.Optimize(n)
		after := n.Stats()
		cfg, stats, err := fabric.Place(n, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		bits, err := fabric.EncodeStatic(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		if _, err := fabric.NewPFU(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fplstat: %s failed validation: %v\n", c.name, err)
			os.Exit(1)
		}
		_ = removed
		_ = bits
		fmt.Printf("%-12s %8d %8d %8d %6d %6d %6.1f%% %10d %6d\n",
			c.name, before.LUTs, after.LUTs, after.FFs, after.Depth,
			stats.Cells, stats.Utilization*100, stats.Wirelength, stats.MaxWire)
	}
}
