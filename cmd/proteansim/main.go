// Command proteansim runs one scheduling scenario on the ProteanARM and
// prints a detailed report: per-process completion, CIS activity, RFU
// dispatch statistics and (optionally) the kernel event trace.
//
// Usage:
//
//	proteansim -app alpha|twofish|echo|mix -n 4 [-quantum cycles]
//	           [-policy rr|random|lru|2chance] [-soft] [-sharing]
//	           [-items N] [-scale N] [-trace]
//
// "mix" runs one instance of each application.
package main

import (
	"flag"
	"fmt"
	"os"

	"protean/internal/asm"
	"protean/internal/bus"
	"protean/internal/core"
	"protean/internal/exp"
	"protean/internal/kernel"
	"protean/internal/machine"
	"protean/internal/trace"
	"protean/internal/workload"
)

func main() {
	appName := flag.String("app", "alpha", "application: alpha, twofish, echo, or mix")
	n := flag.Int("n", 4, "concurrent instances")
	quantum := flag.Uint("quantum", 0, "scheduling quantum in cycles (default: scaled 10ms)")
	policy := flag.String("policy", "rr", "replacement policy: rr, random, lru, 2chance")
	soft := flag.Bool("soft", false, "software-dispatch mode")
	sharing := flag.Bool("sharing", false, "share circuit instances between identical registrations")
	items := flag.Int("items", 0, "work units per instance (default: scaled)")
	scaleF := flag.Int("scale", 100, "scale divisor")
	seed := flag.Int64("seed", 1, "random policy seed")
	showTrace := flag.Bool("trace", false, "print the kernel event trace tail")
	gate := flag.Bool("gatelevel", false, "run the alpha circuit as its real placed bitstream on the fabric simulator (slow)")
	disasmN := flag.Int("disasm", 0, "stream a disassembly of the first N executed instructions to stderr")
	flag.Parse()

	if err := run(*appName, *n, uint32(*quantum), *policy, *soft, *sharing, *items, *scaleF, *seed, *showTrace, *gate, *disasmN); err != nil {
		fmt.Fprintln(os.Stderr, "proteansim:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (kernel.PolicyKind, error) {
	switch s {
	case "rr", "round-robin":
		return kernel.PolicyRoundRobin, nil
	case "random":
		return kernel.PolicyRandom, nil
	case "lru":
		return kernel.PolicyLRU, nil
	case "2chance", "second-chance":
		return kernel.PolicySecondChance, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func parseApps(s string) ([]workload.Kind, error) {
	switch s {
	case "alpha":
		return []workload.Kind{workload.Alpha}, nil
	case "twofish":
		return []workload.Kind{workload.Twofish}, nil
	case "echo":
		return []workload.Kind{workload.Echo}, nil
	case "mix":
		return []workload.Kind{workload.Alpha, workload.Twofish, workload.Echo}, nil
	}
	return nil, fmt.Errorf("unknown app %q", s)
}

func run(appName string, n int, quantum uint32, policyName string, soft, sharing bool, items, scaleF int, seed int64, showTrace, gate bool, disasmN int) error {
	pol, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	kinds, err := parseApps(appName)
	if err != nil {
		return err
	}
	scale := exp.Scale{Factor: scaleF}
	if quantum == 0 {
		quantum = scale.Quantum(exp.Quantum10ms)
	}
	mode := workload.ModeHWOnly
	if soft {
		mode = workload.ModeHW
	}

	m := machine.New(machine.Config{ConfigBytesPerCycle: scale.ConfigBytesPerCycle()})
	tl := trace.New(64)
	cfg := kernel.Config{
		Quantum:      quantum,
		Policy:       pol,
		SoftDispatch: soft,
		Sharing:      sharing,
		Costs:        scale.Costs(),
		Seed:         seed,
		Trace:        tl,
	}
	if disasmN > 0 {
		left := disasmN
		cfg.InstrHook = func(pc uint32) {
			if left <= 0 {
				return
			}
			left--
			if w, fault := m.Bus.Read32(pc, bus.Fetch); fault == nil {
				fmt.Fprintf(os.Stderr, "%08x  %08x  %s\n", pc, w, asm.Disassemble(w, pc))
			}
		}
	}
	k := kernel.New(m, cfg)

	expected := map[string]uint32{}
	for i := 0; i < n; i++ {
		kind := kinds[i%len(kinds)]
		cnt := items
		if cnt <= 0 {
			cnt = scale.Items(kind)
		}
		app, err := workload.Build(kind, cnt, mode)
		if err != nil {
			return err
		}
		if gate && kind == workload.Alpha {
			img, err := workload.AlphaGateImage()
			if err != nil {
				return err
			}
			app.Images = []*core.Image{img}
		}
		prog, err := asm.Assemble(app.Source, k.NextBase())
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s#%d", app.Name, i+1)
		if _, err := k.Spawn(name, prog, app.Images); err != nil {
			return err
		}
		expected[name] = app.Expected
	}
	if err := k.Start(); err != nil {
		return err
	}
	if err := k.Run(1 << 40); err != nil {
		return err
	}

	fmt.Printf("machine: %d cycles total, quantum %d, policy %s, soft=%v sharing=%v\n\n",
		m.Cycles(), quantum, pol, soft, sharing)
	fmt.Println("processes:")
	for _, p := range k.Processes() {
		verdict := "OK"
		if p.State != kernel.ProcExited {
			verdict = "KILLED"
		} else if p.ExitCode != expected[p.Name] {
			verdict = "CHECKSUM MISMATCH"
		}
		fmt.Printf("  %-22s completion=%-12d switches=%-5d faults=%-5d instrs=%-10d %s\n",
			p.Name, p.Stats.CompletionCycle, p.Stats.Switches, p.Stats.Faults,
			p.Stats.UserInstrs, verdict)
	}
	cs := k.CIS.Stats
	fmt.Printf("\nCIS: faults=%d mapping-faults=%d loads=%d restores=%d evictions=%d soft-maps=%d share-hits=%d\n",
		cs.Faults, cs.MappingFaults, cs.Loads, cs.Restores, cs.Evictions, cs.SoftMaps, cs.ShareHits)
	fmt.Printf("     config traffic: %d bytes, %d cycles on the configuration port\n",
		cs.ConfigBytes, cs.ConfigCycles)
	rs := m.RFU.Stats
	fmt.Printf("RFU: hw-dispatches=%d sw-dispatches=%d faults=%d completions=%d aborts=%d exec-cycles=%d\n",
		rs.HWDispatches, rs.SWDispatches, rs.Faults, rs.Completions, rs.Aborts, rs.ExecCycles)
	fmt.Printf("     TLB1 %d/%d lookups/misses, TLB2 %d/%d\n",
		m.RFU.TLB1.Lookups, m.RFU.TLB1.Misses, m.RFU.TLB2.Lookups, m.RFU.TLB2.Misses)
	ks := k.Stats
	fmt.Printf("kernel: switches=%d timer-irqs=%d syscalls=%d kernel-cycles=%d\n",
		ks.ContextSwitches, ks.TimerIRQs, ks.Syscalls, ks.KernelCycles)
	if showTrace {
		fmt.Println("\nevent trace (most recent):")
		fmt.Print(tl.String())
	}
	return nil
}
