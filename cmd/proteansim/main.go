// Command proteansim runs one scheduling scenario on the ProteanARM and
// prints a detailed report: per-process completion, CIS activity, RFU
// dispatch statistics and (optionally) the kernel event trace. It is a
// thin front end over the public protean facade.
//
// Usage:
//
//	proteansim -app alpha|twofish|echo|mix -n 4 [-quantum cycles]
//	           [-policy rr|random|lru|2chance] [-soft] [-sharing]
//	           [-items N] [-scale N] [-trace] [-progress] [-lint] [-sta]
//	           [-trace-out f.json] [-metrics]
//
// -trace-out writes the run's modeled-cycle timeline as Chrome
// trace-event JSON — open the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing. -metrics prints a deterministic metrics snapshot in
// the Prometheus text format after the report. Both compose with -app
// (per-process tracks) and with -scenario (per-node fleet tracks); the
// emitted bytes depend only on the modeled run, never on worker count.
//
// -lint lints every circuit image the spawned programs register (dead
// logic, constant LUTs, unused flip-flops, floating inputs — see
// fabric.LintConfig) and prints the findings to stderr at spawn time; it
// composes with -app and -scenario. Only gate-level bitstream images
// carry a netlist to lint, so pair it with -gatelevel to see it bite.
//
// -sta prints each distinct circuit image's static timing summary —
// critical-path depth in LUT levels under the fabric's unit-delay model
// (see fabric.Timing) — to stderr at spawn time. Like -lint it composes
// with -app and -scenario, bites only on gate-level bitstream images,
// and is rejected with -cluster.
//
// -app accepts any registered workload name (see -list), "mix" for one
// instance of each paper application in rotation, or a comma-separated
// list of names to rotate through.
//
// With -cluster the same workload rotation becomes a job stream for a
// simulated fleet instead of one session:
//
//	proteansim -cluster -app mix -jobs 12 -n 2 -nodes 4
//	           [-placement rr|random|least-loaded|affinity|wa]
//	           [-slots N] [-gap cycles]
//
// Each job runs -n instances of the next rotation entry in its own
// session on whichever node the placement policy picks; the report shows
// the per-job timeline, per-node utilisation and the fleet-level
// configuration traffic that affinity placement saves.
//
// With -scenario the whole run comes from a declarative JSON spec
// instead of flags — heterogeneous node classes, Poisson or trace
// arrivals, admission bounds and a tunable weighted-affinity weight are
// all spec-only features (the hybrid itself is also reachable as
// -placement wa at its default weight):
//
//	proteansim -scenario testdata/scenario_hetero.json [-progress]
//
// The spec format is protean.Scenario (see LoadScenario); the report
// adds the admission outcome (shed/deferred) and the sojourn-latency
// distribution of the admitted jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"protean"
)

func main() {
	appName := flag.String("app", "alpha", `workload: a registry name, "mix", or a comma-separated rotation`)
	list := flag.Bool("list", false, "print the registered workload names and exit")
	n := flag.Int("n", 4, "concurrent instances")
	quantum := flag.Uint("quantum", 0, "scheduling quantum in cycles (default: scaled 10ms)")
	policy := flag.String("policy", "rr", "replacement policy: rr, random, lru, 2chance")
	soft := flag.Bool("soft", false, "software-dispatch mode")
	sharing := flag.Bool("sharing", false, "share circuit instances between identical registrations")
	items := flag.Int("items", 0, "work units per instance (default: scaled)")
	scaleF := flag.Int("scale", 100, "scale divisor")
	seed := flag.Int64("seed", 1, "random policy seed")
	showTrace := flag.Bool("trace", false, "print the kernel event trace tail")
	progress := flag.Bool("progress", false, "stream structured progress events to stderr")
	gate := flag.Bool("gatelevel", false, "run the alpha circuit as its real placed bitstream on the fabric simulator (slow)")
	disasmN := flag.Int("disasm", 0, "stream a disassembly of the first N executed instructions to stderr")
	lintW := flag.Bool("lint", false, "lint circuit images at build time and print findings to stderr")
	staW := flag.Bool("sta", false, "print static timing summaries of circuit images at build time to stderr")
	clusterMode := flag.Bool("cluster", false, "run a simulated fleet fed from a job queue instead of one session")
	nodes := flag.Int("nodes", 4, "cluster: fleet size")
	jobs := flag.Int("jobs", 8, "cluster: number of jobs (rotating through the -app list)")
	placement := flag.String("placement", "affinity", "cluster: placement policy: rr, random, least-loaded, affinity, wa (weighted-affinity)")
	slots := flag.Int("slots", 0, "cluster: per-node bitstream store slots (0 = default)")
	gap := flag.Uint64("gap", 0, "cluster: mean inter-arrival gap in cycles (0 = batch arrivals)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec (JSON file); only -progress applies alongside")
	traceOut := flag.String("trace-out", "", "write the run's modeled-cycle timeline as Chrome trace-event JSON to this file (view in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the run's metrics snapshot (Prometheus text format) to stdout after the report")
	flag.Parse()

	// A stray positional argument stops flag parsing, silently dropping
	// every flag after it (`-cluster 3 -lint` never sees -lint); reject
	// it rather than run a half-configured session.
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "proteansim: unexpected argument %q (the tool takes flags only)\n", flag.Arg(0))
		os.Exit(2)
	}

	if *list {
		fmt.Println(strings.Join(protean.Workloads(), "\n"))
		return
	}
	var err error
	if *scenarioPath != "" {
		// The spec is the whole configuration: every explicitly set flag
		// other than -scenario/-progress would be silently overridden, so
		// reject them instead.
		// -progress and -lint are runtime-only diagnostics, not
		// configuration, so they compose with a spec.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "progress", "lint", "sta", "trace-out", "metrics":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			err = fmt.Errorf("-scenario takes the whole configuration from the spec file; drop %s", strings.Join(conflicts, ", "))
		} else {
			err = runScenario(*scenarioPath, *progress, *lintW, *staW, *traceOut, *metrics)
		}
	} else if *clusterMode {
		if *showTrace || *disasmN > 0 || *lintW || *staW || *traceOut != "" || *metrics {
			err = fmt.Errorf("-trace, -disasm, -lint, -sta, -trace-out and -metrics are per-session or spec-level aids and are not supported with -cluster; run the same fleet as a -scenario spec to analyse it")
		} else {
			err = runCluster(*appName, *jobs, *n, *nodes, *placement, *slots, *gap,
				uint32(*quantum), *policy, *soft, *sharing, *items, *scaleF, *seed, *progress, *gate)
		}
	} else {
		err = run(*appName, *n, uint32(*quantum), *policy, *soft, *sharing, *items, *scaleF, *seed, *showTrace, *progress, *gate, *disasmN, *lintW, *staW, *traceOut, *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteansim:", err)
		os.Exit(1)
	}
}

// runCluster runs the -cluster mode: a fleet of nodes fed jobs rotating
// through the -app list, and a report of the fleet timeline and the
// configuration traffic the placement policy produced.
func runCluster(appName string, jobs, perJob, nodes int, placementName string, slots int,
	gap uint64, quantum uint32, policyName string, soft, sharing bool,
	items, scaleF int, seed int64, progress, gate bool) error {
	pol, err := protean.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	place, err := protean.ParsePlacement(placementName)
	if err != nil {
		return err
	}
	names, err := parseApps(appName, gate)
	if err != nil {
		return err
	}
	opts := []protean.ClusterOption{
		protean.WithNodes(nodes),
		protean.WithPlacement(place),
		protean.WithClusterSeed(seed),
		protean.WithOpenLoop(gap),
		protean.WithNodeOptions(
			protean.WithScale(scaleF),
			protean.WithQuantum(quantum), // 0 = scaled 10ms default
			protean.WithPolicy(pol),
			protean.WithSoftDispatch(soft),
			protean.WithSharing(sharing),
		),
	}
	if slots > 0 {
		opts = append(opts, protean.WithStoreSlots(slots))
	}
	if progress {
		opts = append(opts, protean.WithFleetProgress(protean.WriterSink(os.Stderr)))
	}
	c, err := protean.NewCluster(opts...)
	if err != nil {
		return err
	}
	for i := 0; i < jobs; i++ {
		if err := c.Submit(names[i%len(names)], perJob, items); err != nil {
			return err
		}
	}
	fr, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	return printFleet(fr)
}

// runScenario runs the -scenario mode: the whole fleet description —
// nodes, arrivals, admission, placement, jobs — comes from one JSON
// spec file.
func runScenario(path string, progress, lint, sta bool, traceOut string, metrics bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := protean.LoadScenario(data)
	if err != nil {
		return err
	}
	if traceOut != "" {
		sc.TraceOut = traceOut
	}
	var opts []protean.StartOption
	if metrics {
		opts = append(opts, protean.WithRunMetrics())
	}
	if progress {
		opts = append(opts, protean.WithRunProgress(protean.WriterSink(os.Stderr)))
	}
	if lint || sta {
		// Analyse every job session's circuit images; only the lint and
		// timing events flow through the per-session sink, so this
		// composes with -progress (which watches the fleet, not the
		// sessions).
		sess := []protean.Option{protean.WithProgress(diagSink(lint, sta))}
		if lint {
			sess = append(sess, protean.WithLintWarnings())
		}
		if sta {
			sess = append(sess, protean.WithTimingStats())
		}
		opts = append(opts, protean.WithRunSessionOptions(sess...))
	}
	fr, err := protean.RunScenario(context.Background(), sc, opts...)
	if err != nil {
		return err
	}
	ferr := printFleet(fr)
	if fr.Metrics != nil {
		// The snapshot is a diagnostic; print it even when verification
		// failed — that is exactly when it is most wanted.
		fmt.Println("\nmetrics:")
		if err := fr.Metrics.WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	return ferr
}

// printFleet renders the fleet report shared by -cluster and -scenario:
// per-job timeline, per-node utilisation, configuration traffic, and —
// when admission control or open-loop arrivals are in play — the shed /
// deferral outcome and the sojourn-latency distribution.
func printFleet(fr *protean.FleetResult) error {
	fmt.Printf("fleet: %d nodes, placement %s, %d jobs, makespan %d cycles\n\n",
		len(fr.Nodes), fr.Policy, len(fr.Jobs), fr.Makespan)
	fmt.Println("jobs:")
	for _, j := range fr.Jobs {
		if j.Shed {
			fmt.Printf("  %-3d %-24s SHED at arrival=%d (admission bound)\n", j.ID, j.Label, j.Arrival)
			continue
		}
		verdict := "OK"
		if j.Run == nil || j.Run.Err() != nil {
			verdict = "FAILED"
		}
		if j.Deferred {
			verdict += fmt.Sprintf(" (deferred %d)", j.DeferCycles)
		}
		fmt.Printf("  %-3d %-24s node=%d arrival=%-10d start=%-10d completion=%-12d cold=%d warm=%d %s\n",
			j.ID, j.Label, j.Node, j.Arrival, j.Start, j.Completion, j.ColdLoads, j.WarmHits, verdict)
	}
	fmt.Println("\nnodes:")
	for _, n := range fr.Nodes {
		util := 0.0
		if fr.Makespan > 0 {
			util = 100 * float64(n.Busy) / float64(fr.Makespan)
		}
		tag := ""
		if n.ClockScale > 1 {
			tag = fmt.Sprintf(" clock=x%d", n.ClockScale)
		}
		fmt.Printf("  node %-2d jobs=%-3d busy=%-12d (%5.1f%%) cold-loads=%-4d warm-hits=%-4d fetch-cycles=%d%s\n",
			n.Node, n.Jobs, n.Busy, util, n.ColdLoads, n.WarmHits, n.FetchCycles, tag)
	}
	fmt.Printf("\nconfig loads: %d total = %d in-session + %d cold fetches (%d warm hits, %d fetch cycles)\n",
		fr.ConfigLoads(), fr.CIS.Loads, fr.ColdLoads, fr.WarmHits, fr.FetchCycles)
	cs := fr.CIS
	fmt.Printf("CIS (all nodes): faults=%d mapping-faults=%d loads=%d restores=%d evictions=%d\n",
		cs.Faults, cs.MappingFaults, cs.Loads, cs.Restores, cs.Evictions)
	if fr.Shed > 0 || fr.Deferred > 0 {
		fmt.Printf("admission: %d shed, %d deferred (%d defer cycles)\n", fr.Shed, fr.Deferred, fr.DeferCycles)
	}
	l := fr.Latency
	if l.Jobs > 0 {
		fmt.Printf("latency (%d admitted jobs): mean=%d p50=%d p95=%d p99=%d max=%d\n",
			l.Jobs, l.Mean, l.P50, l.P95, l.P99, l.Max)
	}
	return fr.Err()
}

// parseApps expands the -app argument into the workload rotation.
func parseApps(s string, gate bool) ([]string, error) {
	var names []string
	if s == "mix" {
		names = []string{"alpha", "twofish", "echo"}
	} else {
		names = strings.Split(s, ",")
	}
	if gate {
		rewrote := false
		for i, name := range names {
			if name == "alpha" {
				names[i] = "alpha/gate"
				rewrote = true
			}
		}
		if !rewrote {
			return nil, fmt.Errorf(`-gatelevel applies to the "alpha" workload; include it in -app`)
		}
	}
	return names, nil
}

// diagSink prints lint-warning and/or timing events — and nothing else —
// to stderr, for -lint / -sta runs that did not also ask for full
// -progress streaming.
func diagSink(lint, sta bool) protean.Sink {
	return protean.SinkFunc(func(e protean.Event) {
		if (lint && e.Kind == protean.EventLintWarning) || (sta && e.Kind == protean.EventTiming) {
			fmt.Fprintln(os.Stderr, e.Message)
		}
	})
}

func run(appName string, n int, quantum uint32, policyName string, soft, sharing bool, items, scaleF int, seed int64, showTrace, progress, gate bool, disasmN int, lint, sta bool, traceOut string, metrics bool) error {
	pol, err := protean.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	opts := []protean.Option{
		protean.WithScale(scaleF),
		protean.WithQuantum(quantum), // 0 = scaled 10ms default
		protean.WithPolicy(pol),
		protean.WithSoftDispatch(soft),
		protean.WithSharing(sharing),
		protean.WithSeed(seed),
	}
	if showTrace {
		opts = append(opts, protean.WithTrace(64))
	}
	if progress {
		opts = append(opts, protean.WithProgress(protean.WriterSink(os.Stderr)))
	}
	if lint {
		opts = append(opts, protean.WithLintWarnings())
	}
	if sta {
		opts = append(opts, protean.WithTimingStats())
	}
	if (lint || sta) && !progress {
		// -progress already renders every event, lint warnings and
		// timing summaries included; without it, route just the
		// diagnostics to stderr.
		opts = append(opts, protean.WithProgress(diagSink(lint, sta)))
	}
	if disasmN > 0 {
		opts = append(opts, protean.WithDisasm(os.Stderr, disasmN))
	}
	if metrics {
		opts = append(opts, protean.WithMetrics())
	}
	var traceFile *os.File
	if traceOut != "" {
		traceFile, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		opts = append(opts, protean.WithTraceOut(traceFile))
	}
	names, err := parseApps(appName, gate)
	if err != nil {
		return err
	}
	s, err := protean.New(opts...)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := s.Spawn(names[i%len(names)], 1, items); err != nil {
			return err
		}
	}
	res, err := s.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("machine: %d cycles total, quantum %d, policy %s, soft=%v sharing=%v\n\n",
		res.Cycles, s.Quantum(), pol, soft, sharing)
	fmt.Println("processes:")
	for _, p := range res.Procs {
		verdict := "OK"
		if p.State != protean.ProcExited {
			verdict = "KILLED"
		} else if !p.OK() {
			verdict = "CHECKSUM MISMATCH"
		}
		fmt.Printf("  %-22s completion=%-12d switches=%-5d faults=%-5d instrs=%-10d %s\n",
			p.Name, p.Completion, p.Switches, p.Faults, p.Instrs, verdict)
	}
	cs := res.CIS
	fmt.Printf("\nCIS: faults=%d mapping-faults=%d loads=%d restores=%d evictions=%d soft-maps=%d share-hits=%d\n",
		cs.Faults, cs.MappingFaults, cs.Loads, cs.Restores, cs.Evictions, cs.SoftMaps, cs.ShareHits)
	fmt.Printf("     config traffic: %d bytes, %d cycles on the configuration port\n",
		cs.ConfigBytes, cs.ConfigCycles)
	rs := res.RFU
	fmt.Printf("RFU: hw-dispatches=%d sw-dispatches=%d faults=%d completions=%d aborts=%d exec-cycles=%d\n",
		rs.HWDispatches, rs.SWDispatches, rs.Faults, rs.Completions, rs.Aborts, rs.ExecCycles)
	fmt.Printf("     TLB1 %d/%d lookups/misses, TLB2 %d/%d\n",
		res.TLB1.Lookups, res.TLB1.Misses, res.TLB2.Lookups, res.TLB2.Misses)
	ks := res.Kernel
	fmt.Printf("kernel: switches=%d timer-irqs=%d syscalls=%d kernel-cycles=%d\n",
		ks.ContextSwitches, ks.TimerIRQs, ks.Syscalls, ks.KernelCycles)
	if showTrace {
		fmt.Println("\nevent trace (most recent):")
		fmt.Print(res.Trace)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return err
		}
	}
	if res.Metrics != nil {
		fmt.Println("\nmetrics:")
		if err := res.Metrics.WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	return res.Err()
}
