// Command proteansim runs one scheduling scenario on the ProteanARM and
// prints a detailed report: per-process completion, CIS activity, RFU
// dispatch statistics and (optionally) the kernel event trace. It is a
// thin front end over the public protean facade.
//
// Usage:
//
//	proteansim -app alpha|twofish|echo|mix -n 4 [-quantum cycles]
//	           [-policy rr|random|lru|2chance] [-soft] [-sharing]
//	           [-items N] [-scale N] [-trace] [-progress]
//
// -app accepts any registered workload name (see -list), "mix" for one
// instance of each paper application in rotation, or a comma-separated
// list of names to rotate through.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"protean"
)

func main() {
	appName := flag.String("app", "alpha", `workload: a registry name, "mix", or a comma-separated rotation`)
	list := flag.Bool("list", false, "print the registered workload names and exit")
	n := flag.Int("n", 4, "concurrent instances")
	quantum := flag.Uint("quantum", 0, "scheduling quantum in cycles (default: scaled 10ms)")
	policy := flag.String("policy", "rr", "replacement policy: rr, random, lru, 2chance")
	soft := flag.Bool("soft", false, "software-dispatch mode")
	sharing := flag.Bool("sharing", false, "share circuit instances between identical registrations")
	items := flag.Int("items", 0, "work units per instance (default: scaled)")
	scaleF := flag.Int("scale", 100, "scale divisor")
	seed := flag.Int64("seed", 1, "random policy seed")
	showTrace := flag.Bool("trace", false, "print the kernel event trace tail")
	progress := flag.Bool("progress", false, "stream structured progress events to stderr")
	gate := flag.Bool("gatelevel", false, "run the alpha circuit as its real placed bitstream on the fabric simulator (slow)")
	disasmN := flag.Int("disasm", 0, "stream a disassembly of the first N executed instructions to stderr")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(protean.Workloads(), "\n"))
		return
	}
	if err := run(*appName, *n, uint32(*quantum), *policy, *soft, *sharing, *items, *scaleF, *seed, *showTrace, *progress, *gate, *disasmN); err != nil {
		fmt.Fprintln(os.Stderr, "proteansim:", err)
		os.Exit(1)
	}
}

// parseApps expands the -app argument into the workload rotation.
func parseApps(s string, gate bool) ([]string, error) {
	var names []string
	if s == "mix" {
		names = []string{"alpha", "twofish", "echo"}
	} else {
		names = strings.Split(s, ",")
	}
	if gate {
		rewrote := false
		for i, name := range names {
			if name == "alpha" {
				names[i] = "alpha/gate"
				rewrote = true
			}
		}
		if !rewrote {
			return nil, fmt.Errorf(`-gatelevel applies to the "alpha" workload; include it in -app`)
		}
	}
	return names, nil
}

func run(appName string, n int, quantum uint32, policyName string, soft, sharing bool, items, scaleF int, seed int64, showTrace, progress, gate bool, disasmN int) error {
	pol, err := protean.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	opts := []protean.Option{
		protean.WithScale(scaleF),
		protean.WithQuantum(quantum), // 0 = scaled 10ms default
		protean.WithPolicy(pol),
		protean.WithSoftDispatch(soft),
		protean.WithSharing(sharing),
		protean.WithSeed(seed),
	}
	if showTrace {
		opts = append(opts, protean.WithTrace(64))
	}
	if progress {
		opts = append(opts, protean.WithProgress(protean.WriterSink(os.Stderr)))
	}
	if disasmN > 0 {
		opts = append(opts, protean.WithDisasm(os.Stderr, disasmN))
	}
	names, err := parseApps(appName, gate)
	if err != nil {
		return err
	}
	s, err := protean.New(opts...)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := s.Spawn(names[i%len(names)], 1, items); err != nil {
			return err
		}
	}
	res, err := s.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("machine: %d cycles total, quantum %d, policy %s, soft=%v sharing=%v\n\n",
		res.Cycles, s.Quantum(), pol, soft, sharing)
	fmt.Println("processes:")
	for _, p := range res.Procs {
		verdict := "OK"
		if p.State != protean.ProcExited {
			verdict = "KILLED"
		} else if !p.OK() {
			verdict = "CHECKSUM MISMATCH"
		}
		fmt.Printf("  %-22s completion=%-12d switches=%-5d faults=%-5d instrs=%-10d %s\n",
			p.Name, p.Completion, p.Switches, p.Faults, p.Instrs, verdict)
	}
	cs := res.CIS
	fmt.Printf("\nCIS: faults=%d mapping-faults=%d loads=%d restores=%d evictions=%d soft-maps=%d share-hits=%d\n",
		cs.Faults, cs.MappingFaults, cs.Loads, cs.Restores, cs.Evictions, cs.SoftMaps, cs.ShareHits)
	fmt.Printf("     config traffic: %d bytes, %d cycles on the configuration port\n",
		cs.ConfigBytes, cs.ConfigCycles)
	rs := res.RFU
	fmt.Printf("RFU: hw-dispatches=%d sw-dispatches=%d faults=%d completions=%d aborts=%d exec-cycles=%d\n",
		rs.HWDispatches, rs.SWDispatches, rs.Faults, rs.Completions, rs.Aborts, rs.ExecCycles)
	fmt.Printf("     TLB1 %d/%d lookups/misses, TLB2 %d/%d\n",
		res.TLB1.Lookups, res.TLB1.Misses, res.TLB2.Lookups, res.TLB2.Misses)
	ks := res.Kernel
	fmt.Printf("kernel: switches=%d timer-irqs=%d syscalls=%d kernel-cycles=%d\n",
		ks.ContextSwitches, ks.TimerIRQs, ks.Syscalls, ks.KernelCycles)
	if showTrace {
		fmt.Println("\nevent trace (most recent):")
		fmt.Print(res.Trace)
	}
	return res.Err()
}
