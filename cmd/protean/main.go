// Command protean is the proteand client: it submits scenario specs
// to a running daemon, watches their event streams, polls status,
// cancels jobs, retrieves FleetResults as JSON, and dumps the
// daemon's metrics in Prometheus text format.
//
// Usage:
//
//	protean -addr ADDR submit [-watch] SPEC.json   print the job id (and stream to completion with -watch)
//	protean -addr ADDR watch JOB                   stream a job's events until it finishes
//	protean -addr ADDR status JOB                  print the job's state
//	protean -addr ADDR cancel JOB                  cancel a job
//	protean -addr ADDR result JOB                  print the finished job's FleetResult JSON
//	protean -addr ADDR metrics                     print the daemon's metrics snapshot
//
// ADDR is either "unix:PATH" or a TCP "host:port"; the default is the
// daemon's default TCP address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"protean"
	"protean/internal/server"
	"protean/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", `daemon address: "unix:PATH" or TCP "host:port"`)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "protean: missing verb (submit | watch | status | cancel | result | metrics)")
		os.Exit(2)
	}
	verb, args := flag.Arg(0), flag.Args()[1:]

	c, err := server.Dial(server.SplitAddr(*addr))
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch verb {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		watch := fs.Bool("watch", false, "stream the job's events and exit with its outcome")
		fs.Parse(args)
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("submit takes exactly one spec file"))
		}
		spec, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		job, err := c.Submit(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(job)
		if *watch {
			watchJob(c, job)
		}
	case "watch":
		watchJob(c, jobArg(args))
	case "status":
		st, err := c.Status(jobArg(args))
		if err != nil {
			fatal(err)
		}
		switch st.State {
		case wire.StateDone:
			fmt.Printf("job %d: %s makespan=%d\n", st.Job, st.State, st.Makespan)
		case wire.StateFailed, wire.StateCanceled:
			fmt.Printf("job %d: %s (%s)\n", st.Job, st.State, st.Err)
		default:
			fmt.Printf("job %d: %s\n", st.Job, st.State)
		}
	case "cancel":
		job := jobArg(args)
		canceled, err := c.Cancel(job)
		if err != nil {
			fatal(err)
		}
		if canceled {
			fmt.Printf("job %d: cancel requested\n", job)
		} else {
			fmt.Printf("job %d: already finished\n", job)
		}
	case "result":
		fr, err := c.Result(jobArg(args))
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(fr, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			fatal(err)
		}
		if err := snap.WriteProm(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "protean: unknown verb %q\n", verb)
		os.Exit(2)
	}
}

// watchJob streams one job's events to stderr until it finishes,
// exiting nonzero unless the job completed successfully.
func watchJob(c *server.Client, job uint64) {
	done, err := c.Watch(job,
		func(ev protean.Event) {
			fmt.Fprintf(os.Stderr, "job %d: %s %s cycle=%d %s\n", job, ev.Kind, ev.Label, ev.Cycle, ev.Message)
		},
		func(dropped uint64) {
			fmt.Fprintf(os.Stderr, "job %d: [%d events dropped]\n", job, dropped)
		})
	if err != nil {
		fatal(err)
	}
	switch done.State {
	case wire.StateDone:
		fmt.Fprintf(os.Stderr, "job %d: done\n", job)
	default:
		fmt.Fprintf(os.Stderr, "job %d: %s (%s)\n", job, done.State, done.Err)
		os.Exit(1)
	}
}

func jobArg(args []string) uint64 {
	if len(args) != 1 {
		fatal(fmt.Errorf("expected exactly one job id"))
	}
	job, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		fatal(fmt.Errorf("bad job id %q", args[0]))
	}
	return job
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protean:", err)
	os.Exit(1)
}
