// Command pasm is the standalone assembler for the ProteanARM dialect:
// it assembles a source file to a flat little-endian binary and prints the
// symbol table. With -d it disassembles a binary instead.
//
// Usage:
//
//	pasm [-o out.bin] [-org 0x8000] [-symbols] [-list] file.s
//	pasm -d [-org 0x8000] file.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"protean/internal/asm"
)

func main() {
	out := flag.String("o", "", "output binary (default: stdout summary only)")
	org := flag.Uint("org", 0x8000, "load address")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	dis := flag.Bool("d", false, "disassemble a binary instead of assembling")
	list := flag.Bool("list", false, "print a disassembly listing after assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pasm [-o out.bin] [-org addr] [-symbols] [-list] file.s | pasm -d file.bin")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasm:", err)
		os.Exit(1)
	}
	if *dis {
		printListing(src, uint32(*org))
		return
	}
	prog, err := asm.Assemble(string(src), uint32(*org))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes at %#08x..%#08x\n", flag.Arg(0), prog.Size(), prog.Origin, prog.End())
	if *symbols {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("  %#08x  %s\n", prog.Symbols[n], n)
		}
	}
	if *list {
		printListing(prog.Code, prog.Origin)
	}
	if *out != "" {
		if err := os.WriteFile(*out, prog.Code, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pasm:", err)
			os.Exit(1)
		}
	}
}

func printListing(code []byte, origin uint32) {
	for i := 0; i+3 < len(code); i += 4 {
		w := binary.LittleEndian.Uint32(code[i:])
		fmt.Printf("%08x  %08x  %s\n", origin+uint32(i), w, asm.Disassemble(w, origin+uint32(i)))
	}
}
