// Command benchjson regenerates the tracked performance trajectories:
// BENCH_fabric.json (the simulation substrates — PFU settle engines,
// configuration loads, bitstream decode, the equivalence prover) and
// BENCH_cluster.json (the fleet layer — placement, lane batching, job
// throughput at 1k-node scale, and the observability overhead ratio of
// a traced versus untraced run). Each file runs its benchmark suite for
// one iteration and records every reported metric (ns/op, allocs, and
// the custom metrics the benchmarks emit — speedup-vs-gate-x,
// jobs/sec, obs-overhead-x, ...) as a benchmark-name → metric map.
//
// Metric values drift with hardware and load, so CI does not pin them;
// it runs `benchjson -check`, which regenerates the suites and fails
// only on schema drift — a benchmark or metric that appeared in or
// vanished from a committed file. That keeps the trajectory files
// honest: adding a benchmark (or losing one) forces a regeneration in
// the same commit.
//
// Usage:
//
//	go run ./cmd/benchjson            # rewrite both trajectory files
//	go run ./cmd/benchjson -check     # fail on schema drift, ignore values
//	go run ./cmd/benchjson -only BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchRun is one `go test -bench` invocation feeding a trajectory.
type benchRun struct {
	pkg   string
	bench string
}

// suites pins which benchmarks feed each trajectory file. The figure
// sweeps are excluded — they regenerate paper plots, not substrate or
// fleet performance.
var suites = []struct {
	file    string
	comment string
	runs    []benchRun
}{
	{
		file: "BENCH_fabric.json",
		comment: "substrate performance trajectory; regenerate with `go run ./cmd/benchjson` " +
			"(CI checks only the schema - benchmark names and metric keys - not the values)",
		runs: []benchRun{
			{".", "^(BenchmarkBehaviouralPFU|BenchmarkGatePFU|BenchmarkCompiledPFU|BenchmarkLanesPFU|" +
				"BenchmarkConfigLoad|BenchmarkConfigLoadGate|BenchmarkInstanceStampOut|BenchmarkBitstreamDecode|" +
				"BenchmarkTLBLookup)$"},
			{"./internal/fabric", "^BenchmarkEquiv$"},
		},
	},
	{
		file: "BENCH_cluster.json",
		comment: "fleet performance trajectory; regenerate with `go run ./cmd/benchjson` " +
			"(CI checks only the schema - benchmark names and metric keys - not the values)",
		runs: []benchRun{
			{".", "^(BenchmarkClusterAffinityVsRoundRobin|BenchmarkClusterLaneBatching|" +
				"BenchmarkFleet1kNodes|BenchmarkObsOverhead)$"},
		},
	},
	{
		file: "BENCH_daemon.json",
		comment: "service layer performance trajectory; regenerate with `go run ./cmd/benchjson` " +
			"(CI checks only the schema - benchmark names and metric keys - not the values)",
		runs: []benchRun{
			{"./internal/server", "^BenchmarkDaemonSubmitThroughput$"},
			{"./internal/wire", "^BenchmarkWireEncode$"},
		},
	},
}

// trajectory is the on-disk shape of a trajectory file.
type trajectory struct {
	// Comment explains the file to readers stumbling on it in the tree.
	Comment string `json:"comment"`
	// Benchmarks maps benchmark name (Benchmark prefix and -GOMAXPROCS
	// suffix stripped) to its reported metrics.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkCompiledPFU-8   1   2505 ns/op   45.82 lanes-speedup-x   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	check := flag.Bool("check", false, "regenerate and fail on schema drift against the committed files (values are not compared)")
	only := flag.String("only", "", "limit to one trajectory file (e.g. BENCH_cluster.json)")
	flag.Parse()

	matched := false
	for _, s := range suites {
		if *only != "" && s.file != *only {
			continue
		}
		matched = true
		got, err := run(s.comment, s.runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}

		if *check {
			want, err := load(s.file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			if drift := schemaDrift(want.Benchmarks, got.Benchmarks); len(drift) > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: schema drift against %s:\n", s.file)
				for _, d := range drift {
					fmt.Fprintln(os.Stderr, "  "+d)
				}
				fmt.Fprintln(os.Stderr, "regenerate with: go run ./cmd/benchjson")
				os.Exit(1)
			}
			fmt.Printf("benchjson: schema matches %s (%d benchmarks)\n", s.file, len(got.Benchmarks))
			continue
		}

		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(s.file, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", s.file, len(got.Benchmarks))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "benchjson: -only %s matches no trajectory file\n", *only)
		os.Exit(1)
	}
}

// run executes one pinned suite and parses every metric it reports.
func run(comment string, runs []benchRun) (*trajectory, error) {
	tr := &trajectory{
		Comment:    comment,
		Benchmarks: make(map[string]map[string]float64),
	}
	for _, s := range runs {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", s.bench, "-benchtime", "1x", "-count", "1", s.pkg)
		outBuf, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s %s: %w\n%s", s.bench, s.pkg, err, outBuf)
		}
		if err := parse(string(outBuf), tr.Benchmarks); err != nil {
			return nil, fmt.Errorf("parsing %s output: %w", s.pkg, err)
		}
	}
	if len(tr.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed")
	}
	return tr, nil
}

// parse extracts metric maps from `go test -bench` output into dst.
func parse(out string, dst map[string]map[string]float64) error {
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return fmt.Errorf("odd metric fields in %q", line)
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("metric value %q in %q: %w", fields[i], line, err)
			}
			metrics[fields[i+1]] = v
		}
		dst[name] = metrics
	}
	return nil
}

func load(path string) (*trajectory, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr trajectory
	if err := json.Unmarshal(buf, &tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &tr, nil
}

// schemaDrift reports benchmarks and metric keys present in one side
// but not the other, as human-readable lines. Values are ignored.
func schemaDrift(want, got map[string]map[string]float64) []string {
	var drift []string
	for _, name := range sortedKeys(want) {
		g, ok := got[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("benchmark %s: in file, not reported by suite", name))
			continue
		}
		for _, k := range sortedMetricKeys(want[name]) {
			if _, ok := g[k]; !ok {
				drift = append(drift, fmt.Sprintf("benchmark %s: metric %q in file, not reported", name, k))
			}
		}
		for _, k := range sortedMetricKeys(g) {
			if _, ok := want[name][k]; !ok {
				drift = append(drift, fmt.Sprintf("benchmark %s: metric %q reported, not in file", name, k))
			}
		}
	}
	for _, name := range sortedKeys(got) {
		if _, ok := want[name]; !ok {
			drift = append(drift, fmt.Sprintf("benchmark %s: reported by suite, not in file", name))
		}
	}
	return drift
}

func sortedKeys(m map[string]map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
