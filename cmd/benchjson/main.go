// Command benchjson regenerates BENCH_fabric.json, the tracked
// performance trajectory of the simulation substrates: it runs the
// substrate benchmark suite for one iteration and records every
// reported metric (ns/op, allocs, and the custom metrics the
// benchmarks emit — speedup-vs-gate-x, lanes-speedup-x,
// batching-speedup-x, cones-proved-per-sec, ...) as a benchmark-name →
// metric map.
//
// Metric values drift with hardware and load, so CI does not pin them;
// it runs `benchjson -check`, which regenerates the suite and fails
// only on schema drift — a benchmark or metric that appeared in or
// vanished from the committed file. That keeps the trajectory file
// honest: adding a benchmark (or losing one) forces a regeneration in
// the same commit.
//
// Usage:
//
//	go run ./cmd/benchjson            # rewrite BENCH_fabric.json
//	go run ./cmd/benchjson -check     # fail on schema drift, ignore values
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// suite pins which benchmarks feed the trajectory: the fabric/cluster
// substrate microbenchmarks in the root package (PFU settle engines,
// configuration loads, lane batching) and the fabric equivalence
// prover. The figure sweeps are excluded — they regenerate paper
// plots, not substrate performance.
var suite = []struct {
	pkg   string
	bench string
}{
	{".", "^(BenchmarkBehaviouralPFU|BenchmarkGatePFU|BenchmarkCompiledPFU|BenchmarkLanesPFU|" +
		"BenchmarkConfigLoad|BenchmarkConfigLoadGate|BenchmarkInstanceStampOut|BenchmarkBitstreamDecode|" +
		"BenchmarkTLBLookup|BenchmarkClusterAffinityVsRoundRobin|BenchmarkClusterLaneBatching)$"},
	{"./internal/fabric", "^BenchmarkEquiv$"},
}

const trajectoryFile = "BENCH_fabric.json"

// trajectory is the on-disk shape of BENCH_fabric.json.
type trajectory struct {
	// Comment explains the file to readers stumbling on it in the tree.
	Comment string `json:"comment"`
	// Benchmarks maps benchmark name (Benchmark prefix and -GOMAXPROCS
	// suffix stripped) to its reported metrics.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkCompiledPFU-8   1   2505 ns/op   45.82 lanes-speedup-x   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	check := flag.Bool("check", false, "regenerate and fail on schema drift against the committed file (values are not compared)")
	out := flag.String("o", trajectoryFile, "output file")
	flag.Parse()

	got, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *check {
		want, err := load(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if drift := schemaDrift(want.Benchmarks, got.Benchmarks); len(drift) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: schema drift against %s:\n", *out)
			for _, d := range drift {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			fmt.Fprintln(os.Stderr, "regenerate with: go run ./cmd/benchjson")
			os.Exit(1)
		}
		fmt.Printf("benchjson: schema matches %s (%d benchmarks)\n", *out, len(got.Benchmarks))
		return
	}

	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(got.Benchmarks))
}

// run executes the pinned suite and parses every metric it reports.
func run() (*trajectory, error) {
	tr := &trajectory{
		Comment: "substrate performance trajectory; regenerate with `go run ./cmd/benchjson` " +
			"(CI checks only the schema - benchmark names and metric keys - not the values)",
		Benchmarks: make(map[string]map[string]float64),
	}
	for _, s := range suite {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", s.bench, "-benchtime", "1x", "-count", "1", s.pkg)
		outBuf, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s %s: %w\n%s", s.bench, s.pkg, err, outBuf)
		}
		if err := parse(string(outBuf), tr.Benchmarks); err != nil {
			return nil, fmt.Errorf("parsing %s output: %w", s.pkg, err)
		}
	}
	if len(tr.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed")
	}
	return tr, nil
}

// parse extracts metric maps from `go test -bench` output into dst.
func parse(out string, dst map[string]map[string]float64) error {
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			return fmt.Errorf("odd metric fields in %q", line)
		}
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("metric value %q in %q: %w", fields[i], line, err)
			}
			metrics[fields[i+1]] = v
		}
		dst[name] = metrics
	}
	return nil
}

func load(path string) (*trajectory, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr trajectory
	if err := json.Unmarshal(buf, &tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &tr, nil
}

// schemaDrift reports benchmarks and metric keys present in one side
// but not the other, as human-readable lines. Values are ignored.
func schemaDrift(want, got map[string]map[string]float64) []string {
	var drift []string
	for _, name := range sortedKeys(want) {
		g, ok := got[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("benchmark %s: in file, not reported by suite", name))
			continue
		}
		for _, k := range sortedMetricKeys(want[name]) {
			if _, ok := g[k]; !ok {
				drift = append(drift, fmt.Sprintf("benchmark %s: metric %q in file, not reported", name, k))
			}
		}
		for _, k := range sortedMetricKeys(g) {
			if _, ok := want[name][k]; !ok {
				drift = append(drift, fmt.Sprintf("benchmark %s: metric %q reported, not in file", name, k))
			}
		}
	}
	for _, name := range sortedKeys(got) {
		if _, ok := want[name]; !ok {
			drift = append(drift, fmt.Sprintf("benchmark %s: reported by suite, not in file", name))
		}
	}
	return drift
}

func sortedKeys(m map[string]map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
