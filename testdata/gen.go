//go:build ignore

// Regenerates the golden scenario specs under testdata/. Run from the
// repository root after a deliberate schema change:
//
//	go run testdata/gen.go
//
// TestScenarioGolden then pins the files: every spec must load, validate
// and re-marshal to exactly its own bytes.
package main

import (
	"encoding/json"
	"log"
	"os"

	"protean"
)

func main() {
	write("testdata/scenario_uniform.json", uniform())
	write("testdata/scenario_hetero.json", hetero())
}

// uniform is the options-equivalent homogeneous spec: what
// NewCluster(WithNodes(4), WithStoreSlots(2), WithClusterSeed(7),
// WithOpenLoop(40000), WithPlacement(PlaceAffinity),
// WithNodeOptions(WithScale(800), WithQuantum(Quantum1ms/800))) builds.
func uniform() protean.Scenario {
	sc := protean.Scenario{
		Seed: 7,
		Nodes: []protean.NodeSpec{{
			Count:      4,
			StoreSlots: 2,
			Session: protean.SessionSpec{
				Scale:   800,
				Quantum: protean.Quantum1ms / 800,
				Policy:  "round-robin",
			},
		}},
		Arrivals:  protean.ArrivalSpec{Process: protean.ArrivalUniform, MeanGap: 40_000},
		Placement: protean.PlacementSpec{Policy: "config-affinity"},
	}
	rotation := []string{"alpha/hw-nosoft", "twofish/hw-nosoft", "echo/hw-nosoft"}
	for i := 0; i < 6; i++ {
		sc.Jobs = append(sc.Jobs, protean.JobSpec{Workload: rotation[i%len(rotation)], Instances: 2})
	}
	return sc
}

// hetero exercises everything the options cannot express: two node
// classes (one double-clock, small-array outlier), Poisson arrivals,
// a shedding admission bound and the weighted-affinity hybrid.
func hetero() protean.Scenario {
	ref := protean.SessionSpec{
		Scale:   800,
		Quantum: protean.Quantum1ms / 800,
		Policy:  "round-robin",
	}
	small := ref
	small.PFUs = 2
	sc := protean.Scenario{
		Seed: 11,
		Nodes: []protean.NodeSpec{
			{Count: 3, StoreSlots: 2, Session: ref},
			{StoreSlots: 4, ClockScale: 3, Session: small},
		},
		Arrivals:  protean.ArrivalSpec{Process: protean.ArrivalPoisson, MeanGap: 40_000},
		Admission: protean.AdmissionSpec{Bound: 3, Policy: protean.AdmissionShed},
		Placement: protean.PlacementSpec{Policy: "weighted-affinity", Weight: 100_000},
	}
	rotation := []string{"alpha/hw-nosoft", "twofish/hw-nosoft", "echo/hw-nosoft"}
	for i := 0; i < 9; i++ {
		sc.Jobs = append(sc.Jobs, protean.JobSpec{Workload: rotation[i%len(rotation)], Instances: 2})
	}
	return sc
}

func write(path string, sc protean.Scenario) {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d bytes)", path, len(data))
}
